#pragma once

/// \file stats.h
/// Summary statistics used by the measurement pipeline and the model
/// validation code: mean/stddev/percentiles, RMSE, and coefficient of
/// determination (R^2) for model-vs-measurement fits (Figs. 5–8 of the
/// paper overlay model curves on measured points; tests gate on R^2).

#include <cstddef>
#include <span>
#include <vector>

namespace ash {

/// Arithmetic mean.  Precondition: non-empty.
double mean(std::span<const double> xs);

/// Sample standard deviation (n-1 denominator).  Returns 0 for n < 2.
double stddev(std::span<const double> xs);

/// Population variance helper (n denominator).  Returns 0 for empty input.
double variance_population(std::span<const double> xs);

/// Linear-interpolated percentile, p in [0, 100].  Precondition: non-empty.
double percentile(std::vector<double> xs, double p);

/// Median (50th percentile).
double median(std::vector<double> xs);

/// Symmetrically trimmed mean: drop the lowest and highest
/// floor(trim_fraction * n) values, average the rest.  trim_fraction in
/// [0, 0.5); at 0 this is the plain mean.  Precondition: non-empty.
double trimmed_mean(std::vector<double> xs, double trim_fraction);

/// Median absolute deviation (raw, no consistency factor): median(|x - median|).
/// The robust spread estimate used for outlier screening.  Precondition:
/// non-empty.
double median_abs_deviation(std::vector<double> xs);

/// Location estimators selectable by the measurement pipeline.  The mean is
/// the classical (fault-sensitive) choice; the median and trimmed mean
/// reject gross outliers such as corrupted counter readings.
enum class RobustEstimator { kMean, kMedian, kTrimmedMean };

const char* to_string(RobustEstimator estimator);

/// Apply the chosen location estimator.  `trim_fraction` only matters for
/// kTrimmedMean.  Precondition: non-empty.
double robust_location(std::vector<double> xs, RobustEstimator estimator,
                       double trim_fraction = 0.25);

/// Root-mean-square error between two equal-length spans.
double rmse(std::span<const double> a, std::span<const double> b);

/// Coefficient of determination of `model` against `observed`.
/// 1.0 = perfect fit; can be negative for fits worse than the mean.
double r_squared(std::span<const double> observed,
                 std::span<const double> model);

/// Pearson correlation coefficient.  Returns 0 when either input has zero
/// variance.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Streaming accumulator for mean/variance (Welford) — used by long
/// simulations that cannot retain every sample.
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1); 0 for n < 2.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace ash
