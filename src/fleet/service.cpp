#include "ash/fleet/service.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "ash/mc/margin.h"
#include "ash/obs/metrics.h"
#include "ash/obs/profile.h"
#include "ash/obs/trace.h"
#include "ash/tb/experiment_runner.h"
#include "ash/util/atomic_file.h"
#include "ash/util/syscall.h"
#include "ash/util/table.h"

namespace ash::fleet {

namespace {

/// The service's durable state lives in the store under this shard id
/// (its own directory, so it can never collide with campaign shards).
constexpr int kStateShard = 0;

/// Monotonic host milliseconds for I/O deadlines (supervision-layer wall
/// clock, never part of the deterministic payload).
double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

volatile std::sig_atomic_t g_stop = 0;
void handle_stop(int) { g_stop = 1; }

// --- Fatal-signal flight dump --------------------------------------------
// A crashing daemon tries to leave its flight recorder on disk.  The
// handler uses only async-signal-safe calls: sigaction/open/close/rename/
// raise plus FlightRecorder::record/write_fd (atomics and stack buffers).
// The dump goes to a temp name first and renames over the periodic dump
// only when every write succeeded — a half-written crash dump must never
// clobber a complete periodic one.

constexpr int kFatalSignals[] = {SIGSEGV, SIGABRT, SIGBUS, SIGFPE};
constexpr int kFatalSignalCount =
    static_cast<int>(sizeof kFatalSignals / sizeof kFatalSignals[0]);

obs::FlightRecorder* g_fatal_recorder = nullptr;
char g_fatal_path[512] = {0};
char g_fatal_tmp[520] = {0};
struct sigaction g_old_fatal[kFatalSignalCount];

void handle_fatal(int sig) {
  // Restore the previous dispositions first so a crash inside the handler
  // cannot recurse.
  for (int i = 0; i < kFatalSignalCount; ++i) {
    ::sigaction(kFatalSignals[i], &g_old_fatal[i], nullptr);
  }
  if (g_fatal_recorder != nullptr && g_fatal_path[0] != '\0') {
    g_fatal_recorder->record(obs::FlightEventKind::kFatalSignal,
                             static_cast<std::uint64_t>(sig));
    const int fd = ::open(g_fatal_tmp, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      const bool ok = g_fatal_recorder->write_fd(fd);
      ::close(fd);
      if (ok) (void)::rename(g_fatal_tmp, g_fatal_path);
    }
  }
  (void)::raise(sig);
}

std::string errno_message(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

// --- ServiceState text document -----------------------------------------

constexpr char kStateHeader[] = "ash-fleet-service v1";

[[noreturn]] void state_error(const std::string& detail) {
  throw std::runtime_error("service state: " + detail);
}

std::uint64_t parse_u64_token(std::istringstream& line, const char* field) {
  std::uint64_t v = 0;
  if (!(line >> v)) state_error(std::string("field '") + field + "' missing");
  return v;
}

double parse_double_token(std::istringstream& line, const char* field) {
  double v = 0.0;
  if (!(line >> v) || !std::isfinite(v)) {
    state_error(std::string("field '") + field + "' not a finite number");
  }
  return v;
}

}  // namespace

ServiceState ServiceState::genesis(std::uint64_t device_count, Volts margin,
                                   std::uint64_t seed) {
  ServiceState state;
  state.margin = margin;
  state.devices.resize(device_count);
  for (std::uint64_t i = 0; i < device_count; ++i) {
    // One independent stream per device: the prior of device i never moves
    // when the fleet grows (same derivation stability as paper_fleet_shards).
    Rng rng(derive_seed(seed, i));
    state.devices[i].delta_vth = Volts{rng.uniform(0.0, 0.9 * margin.value())};
  }
  return state;
}

std::string ServiceState::serialize() const {
  std::string out = kStateHeader;
  out += '\n';
  out += strformat("sequence %llu\n",
                   static_cast<unsigned long long>(sequence));
  out += strformat("margin_v %.17g\n", margin.value());
  out += strformat("devices %llu\n",
                   static_cast<unsigned long long>(devices.size()));
  for (std::size_t i = 0; i < devices.size(); ++i) {
    out += strformat("device %llu %.17g\n",
                     static_cast<unsigned long long>(i),
                     devices[i].delta_vth.value());
    for (const SleepWindow& w : devices[i].windows) {
      out += strformat("window %llu %.17g %.17g\n",
                       static_cast<unsigned long long>(i), w.start.value(),
                       w.duration.value());
    }
  }
  for (const AppliedMutation& m : applied) {
    out += strformat("applied %llu %llu %llu\n",
                     static_cast<unsigned long long>(m.client_id),
                     static_cast<unsigned long long>(m.request_id),
                     static_cast<unsigned long long>(m.windows_after));
  }
  out += "end\n";
  return out;
}

ServiceState ServiceState::deserialize(std::string_view bytes) {
  std::istringstream is{std::string(bytes)};
  std::string line;
  if (!std::getline(is, line) || line != kStateHeader) {
    state_error("bad header '" + line + "'");
  }
  ServiceState state;
  bool have_sequence = false, have_margin = false, have_devices = false,
       ended = false;
  while (std::getline(is, line)) {
    if (ended) state_error("content after 'end'");
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "sequence") {
      state.sequence = parse_u64_token(ls, "sequence");
      have_sequence = true;
    } else if (tag == "margin_v") {
      state.margin = Volts{parse_double_token(ls, "margin_v")};
      have_margin = true;
    } else if (tag == "devices") {
      state.devices.resize(parse_u64_token(ls, "devices"));
      have_devices = true;
    } else if (tag == "device") {
      const std::uint64_t id = parse_u64_token(ls, "device id");
      if (id >= state.devices.size()) state_error("device id out of range");
      state.devices[id].delta_vth =
          Volts{parse_double_token(ls, "device delta_vth")};
    } else if (tag == "window") {
      const std::uint64_t id = parse_u64_token(ls, "window device");
      if (id >= state.devices.size()) state_error("window device out of range");
      SleepWindow w;
      w.start = Seconds{parse_double_token(ls, "window start")};
      w.duration = Seconds{parse_double_token(ls, "window duration")};
      state.devices[id].windows.push_back(w);
    } else if (tag == "applied") {
      AppliedMutation m;
      m.client_id = parse_u64_token(ls, "applied client");
      m.request_id = parse_u64_token(ls, "applied request");
      m.windows_after = parse_u64_token(ls, "applied windows");
      state.applied.push_back(m);
    } else if (tag == "end") {
      ended = true;
    } else {
      state_error("unknown line tag '" + tag + "'");
    }
  }
  if (!ended) state_error("missing 'end' (truncated document)");
  if (!have_sequence || !have_margin || !have_devices) {
    state_error("missing required field");
  }
  return state;
}

const AppliedMutation* ServiceState::find_applied(
    std::uint64_t client_id, std::uint64_t request_id) const {
  for (const AppliedMutation& m : applied) {
    if (m.client_id == client_id && m.request_id == request_id) return &m;
  }
  return nullptr;
}

std::uint64_t ServiceState::total_windows() const {
  std::uint64_t n = 0;
  for (const DeviceAging& d : devices) n += d.windows.size();
  return n;
}

// --- ServiceStats --------------------------------------------------------

std::string ServiceStats::render() const {
  std::string out = "service stats:\n";
  out += strformat("  connections accepted   %llu (rejected %llu)\n",
                   static_cast<unsigned long long>(connections_accepted),
                   static_cast<unsigned long long>(connections_rejected));
  out += strformat("  evictions              %llu\n",
                   static_cast<unsigned long long>(evictions));
  out += strformat("  frame errors           %llu\n",
                   static_cast<unsigned long long>(frame_errors));
  out += strformat("  requests               %llu (shed %llu)\n",
                   static_cast<unsigned long long>(requests),
                   static_cast<unsigned long long>(shed));
  out += strformat("  responses              %llu\n",
                   static_cast<unsigned long long>(responses));
  out += strformat("  mutations              %llu (replayed %llu)\n",
                   static_cast<unsigned long long>(mutations),
                   static_cast<unsigned long long>(replays));
  out += strformat("  snapshots saved        %llu\n",
                   static_cast<unsigned long long>(snapshots_saved));
  return out;
}

void ServiceStats::publish(obs::Registry& registry,
                           const std::string& prefix) const {
  registry.counter(prefix + "connections_accepted").set(connections_accepted);
  registry.counter(prefix + "connections_rejected").set(connections_rejected);
  registry.counter(prefix + "evictions").set(evictions);
  registry.counter(prefix + "frame_errors").set(frame_errors);
  registry.counter(prefix + "requests").set(requests);
  registry.counter(prefix + "shed").set(shed);
  registry.counter(prefix + "responses").set(responses);
  registry.counter(prefix + "mutations").set(mutations);
  registry.counter(prefix + "replays").set(replays);
  registry.counter(prefix + "snapshots_saved").set(snapshots_saved);
}

// --- Service -------------------------------------------------------------

Service::Service(ServiceConfig config)
    : config_(std::move(config)),
      state_store_(config_.state_dir),
      model_(config_.physics),
      recorder_(config_.flight_recorder_capacity) {
  if (config_.devices < 1) {
    throw std::invalid_argument("service: need at least one device");
  }
  if (config_.max_request_queue < 1 || config_.max_connections < 1 ||
      config_.io_timeout_ms < 1 || config_.poll_interval_ms < 1) {
    throw std::invalid_argument("service: nonsensical limits");
  }
  sockaddr_un addr{};
  if (config_.socket_path.empty() ||
      config_.socket_path.size() >= sizeof addr.sun_path) {
    throw std::invalid_argument("service: bad socket path '" +
                                config_.socket_path + "'");
  }
  if (config_.instrument) {
    // Register once here; the request path only dereferences pointers.
    // 1 µs .. 100 s covers a unix-socket round trip through a snapshot
    // write at 4 buckets/decade.
    const obs::HistogramOptions lat{1e-6, 1e2, 4};
    auto& reg = obs::registry();
    const auto slot = [&](MessageType type, const char* name) {
      latency_[static_cast<std::size_t>(type)] = &reg.histogram(name, lat);
    };
    slot(MessageType::kPingRequest, "fleet.service.latency.ping");
    slot(MessageType::kMarginRequest, "fleet.service.latency.margin");
    slot(MessageType::kMarginBatchRequest,
         "fleet.service.latency.margin_batch");
    slot(MessageType::kRejuvenationRequest,
         "fleet.service.latency.rejuvenation");
    slot(MessageType::kScheduleSleepRequest,
         "fleet.service.latency.schedule_sleep");
    slot(MessageType::kStatusRequest, "fleet.service.latency.status");
    slot(MessageType::kMetricsRequest, "fleet.service.latency.metrics");
    slot(MessageType::kProfileRequest, "fleet.service.latency.profile");
    slot(MessageType::kHealthRequest, "fleet.service.latency.health");
    queue_wait_ = &reg.histogram("fleet.service.queue_wait", lat);
  }
  const auto loaded = state_store_.load_newest_valid(kStateShard);
  if (loaded) {
    // Resume exactly where the last acknowledged mutation left us — the
    // crash-consistency half of the protocol contract.
    state_ = ServiceState::deserialize(loaded->payload);
    last_snapshot_sequence_ = state_.sequence;
  } else {
    state_ = ServiceState::genesis(config_.devices, config_.margin,
                                   config_.seed);
  }
  recorder_.record(obs::FlightEventKind::kDaemonStart, state_.sequence);
  if (loaded) {
    recorder_.record(obs::FlightEventKind::kStateLoaded, state_.sequence);
  } else {
    recorder_.record(obs::FlightEventKind::kStateGenesis);
    save_state();
  }
}

void Service::save_state() {
  const std::string payload = state_.serialize();
  state_store_.save(kStateShard, state_.sequence, payload);
  state_store_.prune(kStateShard, 16);
  ++stats_.snapshots_saved;
  last_snapshot_sequence_ = state_.sequence;
  recorder_.record(obs::FlightEventKind::kSnapshotSaved, state_.sequence,
                   payload.size());
  if (obs::tracing()) {
    obs::instant(obs::EventKind::kFleetSnapshot, "state", "fleet.service",
                 {{"sequence", std::to_string(state_.sequence)}});
  }
  persist_flight();
}

void Service::persist_flight() {
  if (config_.flight_recorder_path.empty() || !recorder_.enabled()) return;
  try {
    util::atomic_write_file(config_.flight_recorder_path,
                            recorder_.serialize());
  } catch (const std::exception&) {
    // Best-effort telemetry: a full disk must never take the daemon down.
  }
}

obs::Histogram* Service::latency_histogram(MessageType type) const {
  const auto raw = static_cast<std::size_t>(type);
  return raw < latency_.size() ? latency_[raw] : nullptr;
}

void Service::publish_volatile(obs::Registry& registry) const {
  stats_.publish(registry);
  protocol_tallies().publish(registry);
  registry.counter("fleet.service.health.poll_iterations")
      .set(health_.poll_iterations);
  registry.counter("fleet.service.health.connections")
      .set(health_.connections);
  registry.counter("fleet.service.health.connections_high_water")
      .set(health_.connections_high_water);
  registry.counter("fleet.service.health.queue_depth_high_water")
      .set(health_.queue_depth_high_water);
  registry.counter("fleet.service.health.snapshot_lag").set(snapshot_lag());
  registry.counter("fleet.service.health.draining").set(draining_ ? 1 : 0);
}

Frame Service::respond(const Frame& request) {
  // Uninstrumented, the timer holds a null pointer and performs no clock
  // read; without a trace sink the span allocates nothing.
  const obs::ScopedLatencyTimer timer(latency_histogram(request.type));
  obs::Span span(obs::EventKind::kFleetRequest, to_string(request.type),
                 "fleet.service");
  if (span.active()) {
    span.arg("request_id", std::to_string(request.request_id));
  }
  try {
    switch (request.type) {
      case MessageType::kPingRequest:
        (void)PingRequest::parse(request.payload);
        return Frame{MessageType::kPingResponse, request.request_id,
                     PingResponse{}.encode()};
      case MessageType::kMarginRequest:
        return respond_margin(request);
      case MessageType::kMarginBatchRequest:
        return respond_margin_batch(request);
      case MessageType::kRejuvenationRequest:
        return respond_rejuvenation(request);
      case MessageType::kScheduleSleepRequest:
        return respond_schedule_sleep(request);
      case MessageType::kStatusRequest:
        return respond_status(request);
      case MessageType::kMetricsRequest:
        return respond_metrics(request);
      case MessageType::kProfileRequest:
        return respond_profile(request);
      case MessageType::kHealthRequest:
        return respond_health(request);
      default:
        throw ProtocolError(std::string("not a request type: ") +
                            to_string(request.type));
    }
  } catch (const ProtocolError& e) {
    ErrorResponse err;
    err.status = Status::kBadRequest;
    err.message = e.what();
    return Frame{MessageType::kErrorResponse, request.request_id,
                 err.encode()};
  } catch (const std::invalid_argument& e) {
    ErrorResponse err;
    err.status = Status::kBadRequest;
    err.message = e.what();
    return Frame{MessageType::kErrorResponse, request.request_id,
                 err.encode()};
  }
}

Frame Service::respond_margin(const Frame& request) {
  const MarginRequest req = MarginRequest::parse(request.payload);
  if (req.device_id >= state_.devices.size()) {
    ErrorResponse err;
    err.status = Status::kUnknownDevice;
    err.message = strformat("device %llu not tracked (fleet has %llu)",
                            static_cast<unsigned long long>(req.device_id),
                            static_cast<unsigned long long>(
                                state_.devices.size()));
    return Frame{MessageType::kErrorResponse, request.request_id,
                 err.encode()};
  }
  mc::MarginQuery query;
  query.delta_vth = state_.devices[req.device_id].delta_vth;
  query.margin = state_.margin;
  query.duty = req.duty;
  query.vdd = req.vdd;
  query.temp = req.temp;
  query.horizon = req.horizon;
  const mc::MarginOutlook outlook = mc::margin_outlook(model_, query);
  MarginResponse resp;
  resp.status = Status::kOk;
  resp.crosses = outlook.crosses;
  resp.time_to_margin = outlook.time_to_margin;
  resp.delta_vth = query.delta_vth;
  resp.margin = query.margin;
  return Frame{MessageType::kMarginResponse, request.request_id,
               resp.encode()};
}

Frame Service::respond_margin_batch(const Frame& request) {
  const MarginBatchRequest req = MarginBatchRequest::parse(request.payload);
  for (std::uint64_t id : req.device_ids) {
    if (id >= state_.devices.size()) {
      ErrorResponse err;
      err.status = Status::kUnknownDevice;
      err.message = strformat("device %llu not tracked (fleet has %llu)",
                              static_cast<unsigned long long>(id),
                              static_cast<unsigned long long>(
                                  state_.devices.size()));
      return Frame{MessageType::kErrorResponse, request.request_id,
                   err.encode()};
    }
  }
  std::vector<mc::MarginQuery> queries;
  queries.reserve(req.device_ids.size());
  for (std::uint64_t id : req.device_ids) {
    mc::MarginQuery query;
    query.delta_vth = state_.devices[id].delta_vth;
    query.margin = state_.margin;
    query.duty = req.duty;
    query.vdd = req.vdd;
    query.temp = req.temp;
    query.horizon = req.horizon;
    queries.push_back(query);
  }
  // The batched overload hoists the shared-schedule work once; each row
  // stays bit-identical to the single-device respond_margin answer.
  const std::vector<mc::MarginOutlook> outlooks =
      mc::margin_outlook(model_, queries);
  MarginBatchResponse resp;
  resp.status = Status::kOk;
  resp.margin = state_.margin;
  resp.rows.reserve(outlooks.size());
  for (std::size_t i = 0; i < outlooks.size(); ++i) {
    MarginBatchRow row;
    row.device_id = req.device_ids[i];
    row.crosses = outlooks[i].crosses;
    row.time_to_margin = outlooks[i].time_to_margin;
    row.delta_vth = queries[i].delta_vth;
    resp.rows.push_back(row);
  }
  return Frame{MessageType::kMarginBatchResponse, request.request_id,
               resp.encode()};
}

Frame Service::respond_rejuvenation(const Frame& request) {
  (void)RejuvenationRequest::parse(request.payload);  // validate only
  RejuvenationResponse resp;
  resp.status = Status::kOk;
  if (!config_.campaign_dir.empty() && config_.shard_count > 0) {
    try {
      const CheckpointStore campaigns(config_.campaign_dir);
      for (int sid = 0; sid < config_.shard_count; ++sid) {
        const auto loaded = campaigns.load_newest_valid(sid);
        if (!loaded) continue;
        try {
          const auto checkpoint =
              tb::CampaignCheckpoint::deserialize(loaded->payload);
          const double degradation =
              checkpoint.log.fractional_degradation();
          // Strict > keeps the lowest shard id on ties — deterministic.
          if (!resp.any || degradation > resp.degradation) {
            resp.any = true;
            resp.shard_id = sid;
            resp.degradation = degradation;
          }
        } catch (const std::exception&) {
          continue;  // unreadable snapshot: skip, never crash the query
        }
      }
    } catch (const std::runtime_error&) {
      // campaign_dir unusable: answer "no shard" rather than fail
    }
  }
  return Frame{MessageType::kRejuvenationResponse, request.request_id,
               resp.encode()};
}

Frame Service::respond_schedule_sleep(const Frame& request) {
  const ScheduleSleepRequest req =
      ScheduleSleepRequest::parse(request.payload);
  const auto ack = [&](std::uint64_t windows_after) {
    ScheduleSleepResponse resp;
    resp.status = Status::kOk;
    resp.newly_applied = true;
    resp.windows = windows_after;
    return Frame{MessageType::kScheduleSleepResponse, request.request_id,
                 resp.encode()};
  };
  if (const AppliedMutation* m =
          state_.find_applied(req.client_id, request.request_id)) {
    // Idempotent replay: the original acknowledgement bytes, rebuilt — a
    // retrying client cannot double-book and cannot tell it retried.
    ++stats_.replays;
    recorder_.record(obs::FlightEventKind::kMutationReplayed, req.client_id,
                     request.request_id);
    return ack(m->windows_after);
  }
  if (req.device_id >= state_.devices.size()) {
    ErrorResponse err;
    err.status = Status::kUnknownDevice;
    err.message = strformat("device %llu not tracked (fleet has %llu)",
                            static_cast<unsigned long long>(req.device_id),
                            static_cast<unsigned long long>(
                                state_.devices.size()));
    return Frame{MessageType::kErrorResponse, request.request_id,
                 err.encode()};
  }
  DeviceAging& device = state_.devices[req.device_id];
  device.windows.push_back(SleepWindow{req.start, req.duration});
  ++state_.sequence;
  state_.applied.push_back(AppliedMutation{req.client_id, request.request_id,
                                           device.windows.size()});
  recorder_.record(obs::FlightEventKind::kMutationApplied, req.device_id,
                   state_.sequence);
  if (obs::tracing()) {
    obs::instant(obs::EventKind::kFleetApply, "schedule_sleep",
                 "fleet.service",
                 {{"client_id", std::to_string(req.client_id)},
                  {"request_id", std::to_string(request.request_id)},
                  {"device", std::to_string(req.device_id)}});
  }
  // Write-ahead: the mutation is durable *before* the ack is queued, so a
  // SIGKILL in between replays the same ack instead of double-applying.
  save_state();
  ++stats_.mutations;
  return ack(device.windows.size());
}

Frame Service::respond_status(const Frame& request) {
  (void)StatusRequest::parse(request.payload);  // validate only
  StatusResponse resp;
  resp.status = Status::kOk;
  resp.devices = state_.devices.size();
  resp.windows = state_.total_windows();
  resp.sequence = state_.sequence;
  resp.draining = draining_;
  return Frame{MessageType::kStatusResponse, request.request_id,
               resp.encode()};
}

Frame Service::respond_metrics(const Frame& request) {
  const MetricsRequest req = MetricsRequest::parse(request.payload);
  // Refresh the registry from every volatile tally first, so a scrape is
  // never staler than the poll tick it landed on.
  publish_volatile(obs::registry());
  MetricsResponse resp;
  resp.status = Status::kOk;
  resp.text = obs::registry().snapshot().filtered(req.prefix).render();
  return Frame{MessageType::kMetricsResponse, request.request_id,
               resp.encode()};
}

Frame Service::respond_profile(const Frame& request) {
  (void)ProfileRequest::parse(request.payload);  // validate only
  ProfileResponse resp;
  resp.status = Status::kOk;
  resp.profiling = obs::profiling();
  for (const obs::KernelProfile& k : obs::profile_snapshot()) {
    ProfileEntry entry;
    entry.kernel = obs::to_string(k.kernel);
    entry.calls = k.calls;
    entry.total_ns = k.total_ns;
    resp.kernels.push_back(std::move(entry));
  }
  return Frame{MessageType::kProfileResponse, request.request_id,
               resp.encode()};
}

Frame Service::respond_health(const Frame& request) {
  (void)HealthRequest::parse(request.payload);  // validate only
  HealthResponse resp;
  resp.status = Status::kOk;
  resp.poll_iterations = health_.poll_iterations;
  resp.connections = health_.connections;
  resp.connections_high_water = health_.connections_high_water;
  resp.queue_depth_high_water = health_.queue_depth_high_water;
  resp.requests = stats_.requests;
  resp.shed = stats_.shed;
  resp.snapshot_lag = snapshot_lag();
  resp.draining = draining_;
  return Frame{MessageType::kHealthResponse, request.request_id,
               resp.encode()};
}

std::vector<Frame> Service::process_tick(const std::vector<Frame>& requests) {
  std::vector<Frame> responses;
  responses.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (i < static_cast<std::size_t>(config_.max_request_queue)) {
      ++stats_.requests;
      responses.push_back(respond(requests[i]));
    } else {
      // Bounded queue: explicit load shed, never silent latency or OOM.
      ++stats_.shed;
      recorder_.record(obs::FlightEventKind::kRequestShed,
                       requests[i].request_id);
      ErrorResponse err;
      err.status = Status::kOverloaded;
      err.message = strformat("request queue full (%d admitted per tick)",
                              config_.max_request_queue);
      responses.push_back(Frame{MessageType::kErrorResponse,
                                requests[i].request_id, err.encode()});
    }
    ++stats_.responses;
  }
  return responses;
}

void Service::run() {
  struct Conn {
    int fd = -1;
    FrameReader reader;
    std::string outbox;
    double last_io_ms = 0.0;
    bool dead = false;
  };

  const int listen_fd = ::socket(
      AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd < 0) throw std::runtime_error(errno_message("socket"));
  ::unlink(config_.socket_path.c_str());  // stale path from a SIGKILL
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, config_.socket_path.c_str(),
               sizeof addr.sun_path - 1);
  if (util::retry_eintr([&] {
        return ::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof addr);
      }) < 0) {
    ::close(listen_fd);
    throw std::runtime_error(errno_message("bind"));
  }
  if (util::retry_eintr([&] { return ::listen(listen_fd, 64); }) < 0) {
    ::close(listen_fd);
    throw std::runtime_error(errno_message("listen"));
  }

  // SIGTERM/SIGINT flip the drain flag; no SA_RESTART so poll() wakes.
  g_stop = 0;
  struct sigaction stop_action{};
  stop_action.sa_handler = handle_stop;
  sigemptyset(&stop_action.sa_mask);
  struct sigaction old_term{}, old_int{}, old_pipe{};
  ::sigaction(SIGTERM, &stop_action, &old_term);
  ::sigaction(SIGINT, &stop_action, &old_int);
  struct sigaction ignore_pipe{};
  ignore_pipe.sa_handler = SIG_IGN;
  sigemptyset(&ignore_pipe.sa_mask);
  ::sigaction(SIGPIPE, &ignore_pipe, &old_pipe);

  // Fatal-signal best-effort flight dump (restored on return).
  const bool fatal_dump =
      recorder_.enabled() && !config_.flight_recorder_path.empty() &&
      config_.flight_recorder_path.size() + 7 < sizeof g_fatal_path;
  if (fatal_dump) {
    g_fatal_recorder = &recorder_;
    std::snprintf(g_fatal_path, sizeof g_fatal_path, "%s",
                  config_.flight_recorder_path.c_str());
    std::snprintf(g_fatal_tmp, sizeof g_fatal_tmp, "%s.fatal",
                  config_.flight_recorder_path.c_str());
    struct sigaction fatal_action{};
    fatal_action.sa_handler = handle_fatal;
    sigemptyset(&fatal_action.sa_mask);
    for (int i = 0; i < kFatalSignalCount; ++i) {
      ::sigaction(kFatalSignals[i], &fatal_action, &g_old_fatal[i]);
    }
  }

  std::vector<Conn> conns;
  std::vector<pollfd> fds;
  std::vector<std::pair<std::size_t, Frame>> tick_requests;
  std::vector<double> tick_decode_ms;

  while (g_stop == 0) {
    ++health_.poll_iterations;
    if (config_.flight_flush_every_polls > 0 &&
        health_.poll_iterations % static_cast<std::uint64_t>(
                                      config_.flight_flush_every_polls) ==
            0) {
      persist_flight();
    }
    fds.clear();
    fds.push_back(pollfd{listen_fd, POLLIN, 0});
    for (const Conn& c : conns) {
      short events = POLLIN;
      if (!c.outbox.empty()) events |= POLLOUT;
      fds.push_back(pollfd{c.fd, events, 0});
    }
    if (util::retry_eintr([&] {
          return ::poll(fds.data(), fds.size(), config_.poll_interval_ms);
        }) < 0) {
      break;  // unexpected poll failure: drain and exit
    }
    const double now = now_ms();

    // Accept everything pending; beyond the cap, turn clients away with
    // an immediate close (their backoff handles the rest).
    for (;;) {
      const int fd = util::retry_eintr([&] {
        return ::accept4(listen_fd, nullptr, nullptr,
                         SOCK_NONBLOCK | SOCK_CLOEXEC);
      });
      if (fd < 0) break;
      if (conns.size() >= static_cast<std::size_t>(config_.max_connections)) {
        ::close(fd);
        ++stats_.connections_rejected;
        recorder_.record(obs::FlightEventKind::kConnectionRejected);
        continue;
      }
      Conn conn;
      conn.fd = fd;
      conn.last_io_ms = now;
      conns.push_back(std::move(conn));
      ++stats_.connections_accepted;
      recorder_.record(obs::FlightEventKind::kConnectionAccepted,
                       conns.size());
      if (obs::tracing()) {
        obs::instant(obs::EventKind::kFleetAccept, "accept", "fleet.service",
                     {{"connections", std::to_string(conns.size())}});
      }
    }
    health_.connections_high_water =
        std::max(health_.connections_high_water,
                 static_cast<std::uint64_t>(conns.size()));

    // Read: drain every readable connection into its frame reader; a
    // framing violation poisons the reader and the connection dies —
    // resynchronising inside a hostile byte stream is not a thing.
    tick_requests.clear();
    tick_decode_ms.clear();
    for (std::size_t i = 0; i < conns.size(); ++i) {
      Conn& c = conns[i];
      if (c.dead) continue;
      char buf[65536];
      for (;;) {
        const ssize_t n = util::retry_eintr(
            [&] { return ::recv(c.fd, buf, sizeof buf, 0); });
        if (n > 0) {
          c.last_io_ms = now;
          try {
            c.reader.feed(std::string_view(buf, static_cast<std::size_t>(n)));
          } catch (const ProtocolError& e) {
            ++stats_.frame_errors;
            recorder_.record(
                obs::FlightEventKind::kFrameError,
                static_cast<std::uint64_t>(e.violation()));
            c.dead = true;
            break;
          }
          continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        c.dead = true;  // EOF or hard error
        break;
      }
      while (!c.dead) {
        try {
          auto frame = c.reader.next();
          if (!frame) break;
          tick_requests.emplace_back(i, std::move(*frame));
          if (queue_wait_ != nullptr) tick_decode_ms.push_back(now_ms());
        } catch (const ProtocolError& e) {
          ++stats_.frame_errors;
          recorder_.record(obs::FlightEventKind::kFrameError,
                           static_cast<std::uint64_t>(e.violation()));
          c.dead = true;
        }
      }
    }
    health_.queue_depth_high_water =
        std::max(health_.queue_depth_high_water,
                 static_cast<std::uint64_t>(tick_requests.size()));

    // Process this tick's admitted requests; shed the overflow.
    if (!tick_requests.empty()) {
      std::vector<Frame> requests;
      requests.reserve(tick_requests.size());
      for (auto& [conn_idx, frame] : tick_requests) {
        requests.push_back(std::move(frame));
      }
      if (queue_wait_ != nullptr) {
        // Decode-to-dispatch wait, in seconds: how long a decoded frame
        // sat behind this tick's socket reads before processing began.
        const double dispatch_ms = now_ms();
        for (const double decoded_ms : tick_decode_ms) {
          queue_wait_->observe((dispatch_ms - decoded_ms) * 1e-3);
        }
      }
      const std::vector<Frame> responses = process_tick(requests);
      for (std::size_t r = 0; r < responses.size(); ++r) {
        Conn& c = conns[tick_requests[r].first];
        if (c.dead) continue;
        c.outbox += frame_message(responses[r].type, responses[r].request_id,
                                  responses[r].payload);
        if (obs::tracing()) {
          obs::instant(
              obs::EventKind::kFleetAck, to_string(responses[r].type),
              "fleet.service",
              {{"request_id", std::to_string(responses[r].request_id)}});
        }
      }
    }

    // Write what fits; a client that never drains hits the deadline below.
    for (Conn& c : conns) {
      if (c.dead || c.outbox.empty()) continue;
      const ssize_t n = util::retry_eintr([&] {
        return ::send(c.fd, c.outbox.data(), c.outbox.size(), MSG_NOSIGNAL);
      });
      if (n > 0) {
        c.outbox.erase(0, static_cast<std::size_t>(n));
        c.last_io_ms = now;
      } else if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK) {
        c.dead = true;
      }
    }

    // Slow-loris eviction: pending work + no byte moved within the
    // deadline means the peer is stalling us — drop it.
    for (Conn& c : conns) {
      if (c.dead) continue;
      const bool pending = c.reader.buffered() > 0 || !c.outbox.empty();
      if (pending && now - c.last_io_ms > config_.io_timeout_ms) {
        c.dead = true;
        ++stats_.evictions;
        recorder_.record(obs::FlightEventKind::kEviction);
      }
    }

    for (std::size_t i = conns.size(); i-- > 0;) {
      if (conns[i].dead) {
        ::close(conns[i].fd);
        conns.erase(conns.begin() + static_cast<std::ptrdiff_t>(i));
      }
    }
    health_.connections = conns.size();
  }

  // Graceful drain: no new connections, flush what is owed, then persist.
  draining_ = true;
  recorder_.record(obs::FlightEventKind::kDrainBegin);
  ::close(listen_fd);
  const double drain_deadline = now_ms() + config_.io_timeout_ms;
  for (;;) {
    bool owed = false;
    for (Conn& c : conns) owed = owed || (!c.dead && !c.outbox.empty());
    if (!owed || now_ms() > drain_deadline) break;
    for (Conn& c : conns) {
      if (c.dead || c.outbox.empty()) continue;
      const ssize_t n = util::retry_eintr([&] {
        return ::send(c.fd, c.outbox.data(), c.outbox.size(), MSG_NOSIGNAL);
      });
      if (n > 0) {
        c.outbox.erase(0, static_cast<std::size_t>(n));
      } else if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK) {
        c.dead = true;
      }
    }
    pollfd tick{conns.empty() ? -1 : conns.front().fd, POLLOUT, 0};
    (void)util::retry_eintr([&] { return ::poll(&tick, 1, 10); });
  }
  for (Conn& c : conns) ::close(c.fd);
  conns.clear();

  // The final durable checkpoint of the drain contract.
  save_state();

  // Crash-consistent metrics dump: every volatile tally published, then
  // one atomic write — a kill mid-drain leaves the previous complete
  // file, never a torn one.
  publish_volatile(obs::registry());
  if (!config_.metrics_path.empty()) {
    std::ostringstream os;
    obs::registry().snapshot().write(os);
    util::atomic_write_file(config_.metrics_path, os.str());
  }

  recorder_.record(obs::FlightEventKind::kDrainEnd);
  persist_flight();

  ::unlink(config_.socket_path.c_str());
  ::sigaction(SIGTERM, &old_term, nullptr);
  ::sigaction(SIGINT, &old_int, nullptr);
  ::sigaction(SIGPIPE, &old_pipe, nullptr);
  if (fatal_dump) {
    for (int i = 0; i < kFatalSignalCount; ++i) {
      ::sigaction(kFatalSignals[i], &g_old_fatal[i], nullptr);
    }
    g_fatal_recorder = nullptr;
  }
}

}  // namespace ash::fleet
