#include "ash/fleet/supervisor.h"

#include <poll.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <ostream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "ash/obs/metrics.h"
#include "ash/obs/trace.h"
#include "ash/util/crc32.h"
#include "ash/util/syscall.h"
#include "ash/util/table.h"

namespace ash::fleet {

namespace {

/// Host-time now, in milliseconds.  Process supervision is the one layer
/// that legitimately reads the wall clock: heartbeat deadlines and restart
/// backoffs pace real processes, and nothing here feeds the physics (the
/// payload determinism test pins that).
std::int64_t now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Pipe protocol, worker -> supervisor: any byte refreshes the heartbeat
/// deadline; 'c' additionally reports one corrupt snapshot the worker had
/// to step over during recovery (the worker overwrites the bad file as it
/// re-advances, so the supervisor can't discover it later by itself).
void send_byte(int fd, char byte) {
  // A failed write (supervisor gone) is not the worker's problem; it will
  // be reaped either way — but EINTR (a signal mid-write) must not eat a
  // heartbeat, or a perfectly healthy worker looks hung.
  [[maybe_unused]] const ssize_t n =
      util::retry_eintr([&] { return ::write(fd, &byte, 1); });
}

void heartbeat(int fd) { send_byte(fd, 'h'); }

/// Worker body: advance the shard from its newest durable snapshot to
/// completion, checkpointing and heartbeating at every phase boundary and
/// faithfully enacting the chaos schedule for this attempt.  Never
/// returns; exits 0 when the campaign is complete.
[[noreturn]] void run_worker(const FleetConfig& config, const ShardSpec& spec,
                             int attempt, int heartbeat_fd) {
  // The child inherited the parent's trace sink / profiling pointers;
  // detach so two processes never interleave writes into one file.
  obs::set_trace_sink(nullptr);
  try {
    const CheckpointStore store(config.checkpoint_dir);
    const FleetFaultAgent chaos(config.chaos, spec.shard_id, attempt);

    if (chaos.stall_scheduled()) {
      // Hang without heartbeating: the supervisor's deadline must fire.
      ::usleep(static_cast<useconds_t>(chaos.stall_ms() * 1000.0));
    }

    fpga::FpgaChip chip(spec.chip);
    tb::ExperimentRunner runner(config.runner);

    tb::CampaignCheckpoint ckpt;
    if (const auto newest = store.load_newest_valid(spec.shard_id)) {
      ckpt = tb::CampaignCheckpoint::deserialize(newest->payload);
      for (int i = 0; i < newest->corrupt_skipped; ++i) {
        send_byte(heartbeat_fd, 'c');
      }
    } else {
      ckpt = tb::initial_checkpoint(chip, spec.test_case, config.runner);
      // Seed the store with the phase-0 snapshot so even a shard that
      // never completes a phase quarantines with *valid* (empty) state,
      // and so a corrupted first real snapshot has something to fall
      // back to.
      store.save(spec.shard_id, 0, ckpt.serialize());
    }
    heartbeat(heartbeat_fd);

    int phases_this_attempt = 0;
    const int step = std::max(1, config.phases_per_checkpoint);
    for (;;) {
      const tb::CampaignResult result =
          runner.run_campaign(chip, spec.test_case, ckpt, step);
      const int advanced = result.checkpoint.next_phase - ckpt.next_phase;
      ckpt = result.checkpoint;
      const std::string path =
          store.save(spec.shard_id,
                     static_cast<std::uint64_t>(ckpt.next_phase),
                     ckpt.serialize());
      heartbeat(heartbeat_fd);
      phases_this_attempt += advanced;

      // A kill drawn beyond this shard's phase count fires at the
      // completion boundary instead: every scheduled kill really kills
      // (and every scheduled corruption really corrupts), even on a shard
      // whose campaign is shorter than the draw.
      if (chaos.kill_scheduled() &&
          (phases_this_attempt >= chaos.kill_after_phases() ||
           result.completed)) {
        if (chaos.corrupt_scheduled()) chaos.corrupt_file(path);
        ::raise(SIGKILL);
      }
      if (result.completed) _exit(0);
      if (advanced <= 0) _exit(4);  // no forward progress: config bug
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ash-fleet worker shard %d: %s\n", spec.shard_id,
                 e.what());
    _exit(3);
  }
  _exit(3);
}

/// Supervisor-side view of one shard.
struct Slot {
  enum class State { kRunning, kBackoff, kDone, kQuarantined };
  State state = State::kRunning;
  const ShardSpec* spec = nullptr;
  pid_t pid = -1;
  int fd = -1;
  int attempt = 0;  ///< attempt index currently (or next) running
  std::int64_t last_beat_ms = 0;
  std::int64_t restart_at_ms = 0;
  ShardOutcome outcome;
};

}  // namespace

const char* to_string(ShardQuality quality) {
  switch (quality) {
    case ShardQuality::kClean: return "clean";
    case ShardQuality::kRecovered: return "recovered";
    case ShardQuality::kQuarantined: return "quarantined";
  }
  return "unknown";
}

std::string SupervisionStats::render() const {
  std::ostringstream os;
  os << "fleet supervision:\n";
  os << "  workers launched      " << workers_launched << "\n";
  os << "  worker crashes        " << worker_crashes << "\n";
  os << "  heartbeat timeouts    " << heartbeat_timeouts << "\n";
  os << "  restarts              " << restarts << "\n";
  os << "  backoffs              " << backoffs << " (total "
     << fmt_fixed(backoff_total_ms, 0) << " ms)\n";
  os << "  quarantined shards    " << quarantined << "\n";
  os << "  corrupt snapshots     " << corrupt_snapshots_skipped
     << " skipped\n";
  return os.str();
}

void SupervisionStats::publish(obs::Registry& registry,
                               const std::string& prefix) const {
  const auto set = [&](const char* name, int value) {
    registry.counter(prefix + name).set(static_cast<std::uint64_t>(value));
  };
  set("workers_launched", workers_launched);
  set("worker_crashes", worker_crashes);
  set("heartbeat_timeouts", heartbeat_timeouts);
  set("restarts", restarts);
  set("backoffs", backoffs);
  set("quarantined", quarantined);
  set("corrupt_snapshots_skipped", corrupt_snapshots_skipped);
  registry.gauge(prefix + "backoff_total_ms").set(backoff_total_ms);
}

void FleetReport::write_payload(std::ostream& os) const {
  os << "ash-fleet-report v1\n";
  os << "shards " << shards.size() << "\n";
  for (const auto& s : shards) {
    os << "shard " << s.shard_id << " chip " << s.chip_id << " completed "
       << (s.completed ? 1 : 0) << " phases " << s.phases_done << "/"
       << s.phases_total << "\n";
    if (s.have_state) {
      os << "faults " << s.state.faults.serialize() << "\n";
      os << "log\n";
      s.state.log.write_csv(os);
    } else {
      os << "faults -\n";
      os << "log\n";
    }
    os << "end shard\n";
  }
}

std::string FleetReport::payload() const {
  std::ostringstream os;
  write_payload(os);
  return os.str();
}

std::uint32_t FleetReport::payload_crc() const {
  return util::crc32(payload());
}

bool FleetReport::all_completed() const {
  return std::all_of(shards.begin(), shards.end(),
                     [](const ShardOutcome& s) { return s.completed; });
}

std::string FleetReport::render() const {
  Table t({"shard", "chip", "quality", "restarts", "phases", "samples",
           "completed"});
  for (const auto& s : shards) {
    t.add_row({strformat("%d", s.shard_id), strformat("%d", s.chip_id),
               to_string(s.quality), strformat("%d", s.restarts),
               strformat("%d/%d", s.phases_done, s.phases_total),
               s.have_state ? strformat("%zu", s.state.log.size())
                            : std::string("-"),
               s.completed ? "yes" : "no"});
  }
  std::ostringstream os;
  os << t.render() << stats.render();
  return os.str();
}

FleetSupervisor::FleetSupervisor(FleetConfig config,
                                 std::vector<ShardSpec> shards)
    : config_(std::move(config)), shards_(std::move(shards)) {
  if (shards_.empty()) {
    throw std::invalid_argument("fleet supervisor: no shards");
  }
  std::set<int> ids;
  for (const auto& s : shards_) {
    if (!ids.insert(s.shard_id).second) {
      throw std::invalid_argument("fleet supervisor: duplicate shard id " +
                                  std::to_string(s.shard_id));
    }
  }
  // Validate the store up front (throws on a missing/unwritable dir).
  (void)CheckpointStore(config_.checkpoint_dir);
}

FleetReport FleetSupervisor::run() {
  const CheckpointStore store(config_.checkpoint_dir);
  FleetReport report;
  SupervisionStats& stats = report.stats;

  std::vector<Slot> slots(shards_.size());

  const auto spawn = [&](Slot& slot) {
    int fds[2];
    if (::pipe(fds) != 0) {
      throw std::runtime_error("fleet supervisor: pipe() failed");
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(fds[0]);
      ::close(fds[1]);
      throw std::runtime_error("fleet supervisor: fork() failed");
    }
    if (pid == 0) {
      ::close(fds[0]);
      run_worker(config_, *slot.spec, slot.attempt, fds[1]);  // never returns
    }
    ::close(fds[1]);
    slot.pid = pid;
    slot.fd = fds[0];
    slot.state = Slot::State::kRunning;
    slot.last_beat_ms = now_ms();
    stats.workers_launched++;
  };

  /// Load the newest valid snapshot into the slot's outcome (shared by
  /// the success and quarantine paths).
  const auto load_state = [&](Slot& slot) {
    if (const auto newest = store.load_newest_valid(slot.spec->shard_id)) {
      slot.outcome.state = tb::CampaignCheckpoint::deserialize(newest->payload);
      slot.outcome.have_state = true;
      // Adds to the worker-reported ('c' byte) tallies: files still corrupt
      // at report time are ones no worker got to step over.
      slot.outcome.corrupt_snapshots_skipped += newest->corrupt_skipped;
      stats.corrupt_snapshots_skipped += newest->corrupt_skipped;
    }
    slot.outcome.phases_done =
        slot.outcome.have_state ? slot.outcome.state.next_phase : 0;
    slot.outcome.completed = slot.outcome.have_state &&
                             slot.outcome.phases_done ==
                                 slot.outcome.phases_total;
  };

  const auto finish = [&](Slot& slot) {
    slot.state = Slot::State::kDone;
    load_state(slot);
    slot.outcome.quality = slot.outcome.restarts > 0
                               ? ShardQuality::kRecovered
                               : ShardQuality::kClean;
  };

  const auto strike = [&](Slot& slot, const char* why) {
    if (slot.attempt < config_.max_restarts) {
      const double backoff =
          std::min(static_cast<double>(config_.backoff_max_ms),
                   static_cast<double>(config_.backoff_initial_ms) *
                       std::pow(config_.backoff_multiplier,
                                static_cast<double>(slot.attempt)));
      slot.state = Slot::State::kBackoff;
      slot.restart_at_ms = now_ms() + static_cast<std::int64_t>(backoff);
      slot.attempt++;
      slot.outcome.restarts++;
      stats.restarts++;
      stats.backoffs++;
      stats.backoff_total_ms += backoff;
      if (obs::tracing()) {
        obs::instant(obs::EventKind::kBackoff,
                     "shard " + std::to_string(slot.spec->shard_id),
                     "fleet.supervisor",
                     {{"why", why},
                      {"attempt", std::to_string(slot.attempt)},
                      {"backoff_ms", fmt_fixed(backoff, 0)}});
      }
    } else {
      slot.state = Slot::State::kQuarantined;
      load_state(slot);
      slot.outcome.quality = ShardQuality::kQuarantined;
      stats.quarantined++;
      if (obs::tracing()) {
        obs::instant(obs::EventKind::kWorkerQuarantine,
                     "shard " + std::to_string(slot.spec->shard_id),
                     "fleet.supervisor",
                     {{"why", why},
                      {"strikes", std::to_string(slot.attempt + 1)}});
      }
    }
  };

  /// Reap a worker whose pipe reached EOF (it exited or was killed).
  const auto reap = [&](Slot& slot) {
    ::close(slot.fd);
    slot.fd = -1;
    int status = 0;
    (void)util::retry_eintr(
        [&] { return ::waitpid(slot.pid, &status, 0); });
    slot.pid = -1;
    if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
      finish(slot);
    } else {
      stats.worker_crashes++;
      strike(slot, WIFSIGNALED(status) ? "killed" : "crashed");
    }
  };

  for (std::size_t i = 0; i < shards_.size(); ++i) {
    slots[i].spec = &shards_[i];
    slots[i].outcome.shard_id = shards_[i].shard_id;
    slots[i].outcome.chip_id = shards_[i].chip.chip_id;
    slots[i].outcome.phases_total =
        static_cast<int>(shards_[i].test_case.phases.size());
    spawn(slots[i]);
  }

  for (;;) {
    // Assemble the poll set and the nearest deadline.
    std::vector<pollfd> pfds;
    std::vector<Slot*> pfd_slots;
    std::int64_t next_deadline = std::numeric_limits<std::int64_t>::max();
    bool live = false;
    const std::int64_t now = now_ms();
    for (auto& slot : slots) {
      if (slot.state == Slot::State::kRunning) {
        pfds.push_back({slot.fd, POLLIN, 0});
        pfd_slots.push_back(&slot);
        next_deadline = std::min(
            next_deadline, slot.last_beat_ms + config_.heartbeat_timeout_ms);
        live = true;
      } else if (slot.state == Slot::State::kBackoff) {
        next_deadline = std::min(next_deadline, slot.restart_at_ms);
        live = true;
      }
    }
    if (!live) break;

    const int timeout = static_cast<int>(
        std::clamp<std::int64_t>(next_deadline - now, 0, 60'000));
    const int ready = util::retry_eintr([&] {
      return ::poll(pfds.empty() ? nullptr : pfds.data(),
                    static_cast<nfds_t>(pfds.size()), timeout);
    });
    if (ready < 0) {
      throw std::runtime_error("fleet supervisor: poll() failed");
    }

    // Drain heartbeats; EOF means the worker is gone.
    for (std::size_t i = 0; i < pfds.size(); ++i) {
      Slot& slot = *pfd_slots[i];
      if (slot.state != Slot::State::kRunning) continue;
      if (pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) {
        char buf[256];
        const ssize_t n = util::retry_eintr(
            [&] { return ::read(slot.fd, buf, sizeof buf); });
        if (n > 0) {
          slot.last_beat_ms = now_ms();
          for (ssize_t b = 0; b < n; ++b) {
            if (buf[b] == 'c') {
              slot.outcome.corrupt_snapshots_skipped++;
              stats.corrupt_snapshots_skipped++;
            }
          }
        } else if (n == 0) {
          reap(slot);
        }
        // n < 0: spurious wakeup; leave the deadline running.
      }
    }

    // Deadlines: hung workers and due restarts.
    const std::int64_t after = now_ms();
    for (auto& slot : slots) {
      if (slot.state == Slot::State::kRunning &&
          after - slot.last_beat_ms >= config_.heartbeat_timeout_ms) {
        stats.heartbeat_timeouts++;
        if (obs::tracing()) {
          obs::instant(obs::EventKind::kHeartbeatMiss,
                       "shard " + std::to_string(slot.spec->shard_id),
                       "fleet.supervisor",
                       {{"silent_ms",
                         std::to_string(after - slot.last_beat_ms)}});
        }
        ::kill(slot.pid, SIGKILL);
        // The pipe write end closes when the kill lands; reap right away
        // (waitpid blocks the few ms until the zombie appears).
        ::close(slot.fd);
        slot.fd = -1;
        int status = 0;
        (void)util::retry_eintr(
            [&] { return ::waitpid(slot.pid, &status, 0); });
        slot.pid = -1;
        stats.worker_crashes++;
        strike(slot, "hung");
      } else if (slot.state == Slot::State::kBackoff &&
                 after >= slot.restart_at_ms) {
        if (obs::tracing()) {
          obs::instant(obs::EventKind::kWorkerRestart,
                       "shard " + std::to_string(slot.spec->shard_id),
                       "fleet.supervisor",
                       {{"attempt", std::to_string(slot.attempt)}});
        }
        spawn(slot);
      }
    }
  }

  for (auto& slot : slots) report.shards.push_back(std::move(slot.outcome));
  std::sort(report.shards.begin(), report.shards.end(),
            [](const ShardOutcome& a, const ShardOutcome& b) {
              return a.shard_id < b.shard_id;
            });
  return report;
}

std::vector<ShardSpec> paper_fleet_shards(int count, std::uint64_t seed,
                                          int ro_stages) {
  const auto campaign = tb::paper_campaign();
  std::vector<ShardSpec> shards;
  shards.reserve(static_cast<std::size_t>(std::max(0, count)));
  for (int i = 0; i < count; ++i) {
    ShardSpec spec;
    spec.shard_id = i;
    spec.test_case = campaign[static_cast<std::size_t>(i) % campaign.size()];
    spec.chip.chip_id = spec.test_case.chip_id;
    spec.chip.seed = derive_seed(seed, static_cast<std::uint64_t>(i));
    spec.chip.ro_stages = ro_stages;
    shards.push_back(std::move(spec));
  }
  return shards;
}

}  // namespace ash::fleet
