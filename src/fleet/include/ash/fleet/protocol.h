#pragma once

/// \file protocol.h
/// Wire protocol of the fleet aging service.
///
/// `ash_fleetd` answers queries over a Unix-domain socket; every byte that
/// arrives on that socket is treated as adversarial (the wearout-attack
/// literature's threat model, applied to the manager itself).  Messages
/// travel in binary frames that reuse the PR 6 snapshot discipline —
/// magic, version, declared length, payload CRC, header self-CRC:
///
///   offset  size  field
///        0     8  magic "ASHFLTQ1"
///        8     4  format version (1, little-endian u32)
///       12     4  message type (u32, MessageType)
///       16     8  request id (u64; echoed verbatim in the response)
///       24     8  payload size in bytes (u64, <= max_payload)
///       32     4  CRC-32 of the payload
///       36     4  CRC-32 of bytes 0..35 (header self-check)
///       40     …  payload (text document, kMaxFramePayload cap)
///
/// `FrameReader` decodes a raw byte stream incrementally and rejects
/// hostile input at the earliest offset that proves it invalid: a magic
/// mismatch is rejected at its first wrong byte, an oversized declared
/// length before any payload is buffered, a tampered header at byte 40, a
/// truncated or bit-flipped payload when its CRC fails.  A framing error
/// is not recoverable — the server drops the connection, exactly as
/// `CheckpointStore` refuses a torn snapshot.
///
/// Payloads are line-oriented `key value` text documents (the repo's
/// checkpoint idiom: diffable, 8-bit-clean inside the CRC envelope).
/// Doubles are printed with %.17g so every value round-trips bit-exactly —
/// what makes retried-transcript == undisturbed-transcript a *byte*
/// comparison.  Quantities cross the wire as strong units (ash::Seconds,
/// ash::Volts, ash::Celsius): the struct field types are the wire schema.

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

#include "ash/util/units.h"

namespace ash::fleet {

/// Protocol version written by this build.
inline constexpr std::uint32_t kProtocolVersion = 1;

/// Hard cap on a frame payload.  A header declaring more is rejected
/// before any payload byte is buffered — a 16-exabyte declared length must
/// cost the daemon 40 bytes of memory, not an allocation.
inline constexpr std::uint64_t kMaxFramePayload = 1u << 20;

/// Size of the fixed frame header.
inline constexpr std::size_t kFrameHeaderSize = 40;

/// Thrown on any wire-format violation; the message names the failing
/// check and the byte offset where the input proved invalid.
class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Message types.  Requests are odd, their responses even (request + 1).
enum class MessageType : std::uint32_t {
  kPingRequest = 1,
  kPingResponse = 2,
  kMarginRequest = 3,
  kMarginResponse = 4,
  kRejuvenationRequest = 5,
  kRejuvenationResponse = 6,
  kScheduleSleepRequest = 7,
  kScheduleSleepResponse = 8,
  kStatusRequest = 9,
  kStatusResponse = 10,
  kErrorResponse = 11,
};

const char* to_string(MessageType type);
/// True when `raw` encodes a known MessageType.
bool known_message_type(std::uint32_t raw);

/// Response status.  kOverloaded is the backpressure signal: the request
/// was *not* processed and may be retried after a backoff.
enum class Status : std::uint32_t {
  kOk = 0,
  kOverloaded = 1,
  kBadRequest = 2,
  kUnknownDevice = 3,
  kShuttingDown = 4,
};

const char* to_string(Status status);

/// One decoded, CRC-verified frame.
struct Frame {
  MessageType type = MessageType::kErrorResponse;
  std::uint64_t request_id = 0;
  std::string payload;
};

/// Encode one frame (header + CRCs + payload).
std::string frame_message(MessageType type, std::uint64_t request_id,
                          std::string_view payload);

/// Verify and unwrap a complete frame held in one buffer.  Throws
/// ProtocolError on any violation (tests exercise every truncation
/// boundary and every header bit).
Frame decode_frame(std::string_view bytes,
                   std::uint64_t max_payload = kMaxFramePayload);

/// Incremental frame decoder over a byte stream.
///
/// feed() appends wire bytes; next() yields verified frames in order.
/// Either call throws ProtocolError as soon as the buffered prefix cannot
/// extend to a valid frame; after a throw the reader is poisoned and the
/// connection must be dropped (resynchronising inside a hostile byte
/// stream would mean trusting unverified bytes).
class FrameReader {
 public:
  explicit FrameReader(std::uint64_t max_payload = kMaxFramePayload);

  /// Append raw bytes.  Throws ProtocolError on provably-invalid input.
  void feed(std::string_view bytes);

  /// Next complete verified frame, or nullopt when more bytes are needed.
  std::optional<Frame> next();

  /// Bytes buffered but not yet consumed by next().
  std::size_t buffered() const { return buffer_.size(); }
  bool poisoned() const { return poisoned_; }

 private:
  void check_prefix();  ///< earliest-offset rejection of the buffered bytes

  std::uint64_t max_payload_;
  std::string buffer_;
  bool poisoned_ = false;
};

// ---------------------------------------------------------------------------
// Request / response payloads.  Strong units are the wire schema; encode()
// prints canonical text, parse() validates every field and throws
// ProtocolError naming the offender.
// ---------------------------------------------------------------------------

/// "Given this duty cycle, when does device X cross its margin?"
struct MarginRequest {
  std::uint64_t device_id = 0;
  /// Queried mission schedule: switching activity duty cycle in [0, 1]...
  double duty = 0.5;
  /// ...at this supply and die temperature.
  Volts vdd{1.2};
  Celsius temp{80.0};
  /// Search horizon; the answer is right-censored here.
  Seconds horizon = units::hours(10.0 * 365.25 * 24.0);

  std::string encode() const;
  static MarginRequest parse(std::string_view payload);
};

struct MarginResponse {
  Status status = Status::kOk;
  bool crosses = false;
  /// Time until the device's projected DeltaVth crosses its margin
  /// (== horizon when !crosses).
  Seconds time_to_margin{0.0};
  /// The device's current (odometer-estimated) aging and its margin.
  Volts delta_vth{0.0};
  Volts margin{0.0};

  std::string encode() const;
  static MarginResponse parse(std::string_view payload);
};

/// "Which shard needs rejuvenation next epoch?" — ranked by the fractional
/// frequency degradation of each shard's newest durable campaign snapshot.
struct RejuvenationRequest {
  /// Length of the upcoming scheduling epoch (informational; echoed).
  Seconds epoch = units::hours(24.0);

  std::string encode() const;
  static RejuvenationRequest parse(std::string_view payload);
};

struct RejuvenationResponse {
  Status status = Status::kOk;
  /// False when no shard has a valid snapshot to rank.
  bool any = false;
  int shard_id = -1;
  /// Winner's fractional frequency degradation (0..1).
  double degradation = 0.0;

  std::string encode() const;
  static RejuvenationResponse parse(std::string_view payload);
};

/// Scheduling mutation: book a recovery-sleep window for a device.
/// (client_id, request id) is the idempotency key — a retrying client can
/// never double-book the window.
struct ScheduleSleepRequest {
  std::uint64_t client_id = 0;
  std::uint64_t device_id = 0;
  /// Window start, relative to the service's scheduling epoch.
  Seconds start{0.0};
  Seconds duration = units::hours(6.0);

  std::string encode() const;
  static ScheduleSleepRequest parse(std::string_view payload);
};

struct ScheduleSleepResponse {
  Status status = Status::kOk;
  /// Always true on the wire: a replayed (client, request) rebuilds the
  /// original acknowledgement byte-for-byte, so a client that retried a
  /// torn send cannot distinguish its transcript from an undisturbed run.
  bool newly_applied = false;
  /// Device's window count after the mutation.
  std::uint64_t windows = 0;

  std::string encode() const;
  static ScheduleSleepResponse parse(std::string_view payload);
};

struct StatusRequest {
  std::string encode() const;
  static StatusRequest parse(std::string_view payload);
};

/// Deterministic service state summary.  Volatile operational tallies
/// (requests served, evictions) are deliberately absent — they live in the
/// `fleet.service.*` metrics, so chaos cannot perturb response bytes.
struct StatusResponse {
  Status status = Status::kOk;
  std::uint64_t devices = 0;
  std::uint64_t windows = 0;
  /// Durable state sequence (mutations applied since genesis).
  std::uint64_t sequence = 0;
  bool draining = false;

  std::string encode() const;
  static StatusResponse parse(std::string_view payload);
};

/// Error / load-shed response, usable for any request type.
struct ErrorResponse {
  Status status = Status::kBadRequest;
  std::string message;

  std::string encode() const;
  static ErrorResponse parse(std::string_view payload);
};

/// Ping carries no payload; these helpers keep call sites symmetric.
std::string encode_ping();

}  // namespace ash::fleet
