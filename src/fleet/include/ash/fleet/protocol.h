#pragma once

/// \file protocol.h
/// Wire protocol of the fleet aging service.
///
/// `ash_fleetd` answers queries over a Unix-domain socket; every byte that
/// arrives on that socket is treated as adversarial (the wearout-attack
/// literature's threat model, applied to the manager itself).  Messages
/// travel in binary frames that reuse the PR 6 snapshot discipline —
/// magic, version, declared length, payload CRC, header self-CRC:
///
///   offset  size  field
///        0     8  magic "ASHFLTQ1"
///        8     4  format version (1, little-endian u32)
///       12     4  message type (u32, MessageType)
///       16     8  request id (u64; echoed verbatim in the response)
///       24     8  payload size in bytes (u64, <= max_payload)
///       32     4  CRC-32 of the payload
///       36     4  CRC-32 of bytes 0..35 (header self-check)
///       40     …  payload (text document, kMaxFramePayload cap)
///
/// `FrameReader` decodes a raw byte stream incrementally and rejects
/// hostile input at the earliest offset that proves it invalid: a magic
/// mismatch is rejected at its first wrong byte, an oversized declared
/// length before any payload is buffered, a tampered header at byte 40, a
/// truncated or bit-flipped payload when its CRC fails.  A framing error
/// is not recoverable — the server drops the connection, exactly as
/// `CheckpointStore` refuses a torn snapshot.
///
/// Payloads are line-oriented `key value` text documents (the repo's
/// checkpoint idiom: diffable, 8-bit-clean inside the CRC envelope).
/// Doubles are printed with %.17g so every value round-trips bit-exactly —
/// what makes retried-transcript == undisturbed-transcript a *byte*
/// comparison.  Quantities cross the wire as strong units (ash::Seconds,
/// ash::Volts, ash::Celsius): the struct field types are the wire schema.

#include <array>
#include <atomic>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "ash/util/units.h"

namespace ash::obs {
class Registry;
}  // namespace ash::obs

namespace ash::fleet {

/// Protocol version written by this build.
inline constexpr std::uint32_t kProtocolVersion = 1;

/// Hard cap on a frame payload.  A header declaring more is rejected
/// before any payload byte is buffered — a 16-exabyte declared length must
/// cost the daemon 40 bytes of memory, not an allocation.
inline constexpr std::uint64_t kMaxFramePayload = 1u << 20;

/// Size of the fixed frame header.
inline constexpr std::size_t kFrameHeaderSize = 40;

/// The earliest check a hostile byte stream failed.  kNone marks payload
/// *document* errors (valid frame, bad fields) — those are per-request
/// kBadRequest responses, not framing rejections, and are not tallied.
enum class ProtocolViolation : std::uint32_t {
  kNone = 0,
  kBadMagic,         ///< first wrong magic byte
  kBadVersion,       ///< unsupported version at offset 8
  kHostileLength,    ///< declared payload beyond the cap, offset 24
  kHeaderCrc,        ///< header self-check failed at offset 36
  kPayloadCrc,       ///< payload CRC mismatch
  kUnknownType,      ///< CRC-valid frame with an unknown message type
  kTruncated,        ///< one-shot decode of an incomplete frame
  kTrailingGarbage,  ///< one-shot decode with bytes past the frame
  kCount,            // sentinel
};

const char* to_string(ProtocolViolation violation);

/// Thrown on any wire-format violation; the message names the failing
/// check and the byte offset where the input proved invalid, and
/// `violation()` classifies it for the `fleet.protocol.*` tallies.
class ProtocolError : public std::runtime_error {
 public:
  explicit ProtocolError(const std::string& what,
                         ProtocolViolation violation = ProtocolViolation::kNone)
      : std::runtime_error(what), violation_(violation) {}

  ProtocolViolation violation() const { return violation_; }

 private:
  ProtocolViolation violation_;
};

/// Process-global framing tallies: every frame the decoders verify and
/// every hostile rejection, counted at the single choke point where the
/// ProtocolError is constructed.  `publish()` mirrors them into an
/// `obs::Registry` as `fleet.protocol.*` metrics — the byte/bit-sweep test
/// pins that the metrics and its own rejection bookkeeping are the same
/// integers (the PR 3 report==metrics discipline, applied to framing).
class ProtocolTallies {
 public:
  void count_decoded() { decoded_.fetch_add(1, std::memory_order_relaxed); }
  void count(ProtocolViolation violation);

  std::uint64_t decoded() const {
    return decoded_.load(std::memory_order_relaxed);
  }
  std::uint64_t rejected(ProtocolViolation violation) const;
  std::uint64_t rejected_total() const;

  /// Write `<prefix>frames_decoded`, `<prefix>rejected.<class>` and
  /// `<prefix>rejected.total` counters into `registry`.
  void publish(obs::Registry& registry,
               std::string_view prefix = "fleet.protocol.") const;

  /// Zero everything (tests and multi-run tools).
  void reset();

 private:
  std::atomic<std::uint64_t> decoded_{0};
  std::array<std::atomic<std::uint64_t>,
             static_cast<std::size_t>(ProtocolViolation::kCount)>
      rejected_{};
};

/// The process-wide tallies every decoder in this process counts into.
ProtocolTallies& protocol_tallies();

/// Message types.  Requests are odd, their responses even (request + 1).
/// Types 13..18 are the *volatile scrape channel*: their responses carry
/// operational telemetry that chaos legitimately perturbs, so clients keep
/// them out of the replay/idempotency and transcript-identity machinery
/// (12 is left unassigned to preserve the odd/even pairing).  Types 19+
/// return to the deterministic query space — the margin batch is science
/// payload, transcript-comparable like its single-device sibling.
enum class MessageType : std::uint32_t {
  kPingRequest = 1,
  kPingResponse = 2,
  kMarginRequest = 3,
  kMarginResponse = 4,
  kRejuvenationRequest = 5,
  kRejuvenationResponse = 6,
  kScheduleSleepRequest = 7,
  kScheduleSleepResponse = 8,
  kStatusRequest = 9,
  kStatusResponse = 10,
  kErrorResponse = 11,
  kMetricsRequest = 13,
  kMetricsResponse = 14,
  kProfileRequest = 15,
  kProfileResponse = 16,
  kHealthRequest = 17,
  kHealthResponse = 18,
  kMarginBatchRequest = 19,
  kMarginBatchResponse = 20,
};

const char* to_string(MessageType type);
/// True when `raw` encodes a known MessageType.
bool known_message_type(std::uint32_t raw);
/// True for the volatile scrape channel (metrics/profile/health): excluded
/// from idempotent replay and from drill transcript comparisons.
bool volatile_message_type(MessageType type);

/// Response status.  kOverloaded is the backpressure signal: the request
/// was *not* processed and may be retried after a backoff.
enum class Status : std::uint32_t {
  kOk = 0,
  kOverloaded = 1,
  kBadRequest = 2,
  kUnknownDevice = 3,
  kShuttingDown = 4,
};

const char* to_string(Status status);

/// One decoded, CRC-verified frame.
struct Frame {
  MessageType type = MessageType::kErrorResponse;
  std::uint64_t request_id = 0;
  std::string payload;
};

/// Encode one frame (header + CRCs + payload).
std::string frame_message(MessageType type, std::uint64_t request_id,
                          std::string_view payload);

/// Verify and unwrap a complete frame held in one buffer.  Throws
/// ProtocolError on any violation (tests exercise every truncation
/// boundary and every header bit).
Frame decode_frame(std::string_view bytes,
                   std::uint64_t max_payload = kMaxFramePayload);

/// Incremental frame decoder over a byte stream.
///
/// feed() appends wire bytes; next() yields verified frames in order.
/// Either call throws ProtocolError as soon as the buffered prefix cannot
/// extend to a valid frame; after a throw the reader is poisoned and the
/// connection must be dropped (resynchronising inside a hostile byte
/// stream would mean trusting unverified bytes).
class FrameReader {
 public:
  explicit FrameReader(std::uint64_t max_payload = kMaxFramePayload);

  /// Append raw bytes.  Throws ProtocolError on provably-invalid input.
  void feed(std::string_view bytes);

  /// Next complete verified frame, or nullopt when more bytes are needed.
  std::optional<Frame> next();

  /// Bytes buffered but not yet consumed by next().
  std::size_t buffered() const { return buffer_.size(); }
  bool poisoned() const { return poisoned_; }

 private:
  void check_prefix();  ///< earliest-offset rejection of the buffered bytes

  std::uint64_t max_payload_;
  std::string buffer_;
  bool poisoned_ = false;
};

// ---------------------------------------------------------------------------
// Request / response payloads.  Strong units are the wire schema; encode()
// prints canonical text, parse() validates every field and throws
// ProtocolError naming the offender.
// ---------------------------------------------------------------------------

/// Liveness probe.  Both payloads are empty by definition — the codec
/// structs exist so a probe carrying data is rejected at parse time like
/// any other malformed document, and so every wire verb (even the trivial
/// one) goes through the same encode()/parse() discipline.
struct PingRequest {
  std::string encode() const;
  static PingRequest parse(std::string_view payload);
};

struct PingResponse {
  std::string encode() const;
  static PingResponse parse(std::string_view payload);
};

/// "Given this duty cycle, when does device X cross its margin?"
struct MarginRequest {
  std::uint64_t device_id = 0;
  /// Queried mission schedule: switching activity duty cycle in [0, 1]...
  double duty = 0.5;
  /// ...at this supply and die temperature.
  Volts vdd{1.2};
  Celsius temp{80.0};
  /// Search horizon; the answer is right-censored here.
  Seconds horizon = units::hours(10.0 * 365.25 * 24.0);

  std::string encode() const;
  static MarginRequest parse(std::string_view payload);
};

struct MarginResponse {
  Status status = Status::kOk;
  bool crosses = false;
  /// Time until the device's projected DeltaVth crosses its margin
  /// (== horizon when !crosses).
  Seconds time_to_margin{0.0};
  /// The device's current (odometer-estimated) aging and its margin.
  Volts delta_vth{0.0};
  Volts margin{0.0};

  std::string encode() const;
  static MarginResponse parse(std::string_view payload);
};

/// Cap on devices per margin-batch request; a hostile count is rejected
/// before any row is buffered.
inline constexpr std::uint64_t kMaxMarginBatchDevices = 4096;

/// The whole-shard margin query: one mission schedule, many devices.  The
/// daemon answers through the batched mc::margin_outlook overload, which
/// hoists the schedule-dependent work once — each row is still
/// bit-identical to the corresponding single-device kMarginRequest.
struct MarginBatchRequest {
  std::vector<std::uint64_t> device_ids;
  /// Queried mission schedule, shared by every device of the batch.
  double duty = 0.5;
  Volts vdd{1.2};
  Celsius temp{80.0};
  Seconds horizon = units::hours(10.0 * 365.25 * 24.0);

  std::string encode() const;
  static MarginBatchRequest parse(std::string_view payload);
};

/// One device's answer inside a MarginBatchResponse.
struct MarginBatchRow {
  std::uint64_t device_id = 0;
  bool crosses = false;
  Seconds time_to_margin{0.0};
  Volts delta_vth{0.0};
};

struct MarginBatchResponse {
  Status status = Status::kOk;
  /// The fleet-wide aging budget the rows were projected against.
  Volts margin{0.0};
  /// Answers in request order (one row per requested device).
  std::vector<MarginBatchRow> rows;

  std::string encode() const;
  static MarginBatchResponse parse(std::string_view payload);
};

/// "Which shard needs rejuvenation next epoch?" — ranked by the fractional
/// frequency degradation of each shard's newest durable campaign snapshot.
struct RejuvenationRequest {
  /// Length of the upcoming scheduling epoch (informational; echoed).
  Seconds epoch = units::hours(24.0);

  std::string encode() const;
  static RejuvenationRequest parse(std::string_view payload);
};

struct RejuvenationResponse {
  Status status = Status::kOk;
  /// False when no shard has a valid snapshot to rank.
  bool any = false;
  int shard_id = -1;
  /// Winner's fractional frequency degradation (0..1).
  double degradation = 0.0;

  std::string encode() const;
  static RejuvenationResponse parse(std::string_view payload);
};

/// Scheduling mutation: book a recovery-sleep window for a device.
/// (client_id, request id) is the idempotency key — a retrying client can
/// never double-book the window.
struct ScheduleSleepRequest {
  std::uint64_t client_id = 0;
  std::uint64_t device_id = 0;
  /// Window start, relative to the service's scheduling epoch.
  Seconds start{0.0};
  Seconds duration = units::hours(6.0);

  std::string encode() const;
  static ScheduleSleepRequest parse(std::string_view payload);
};

struct ScheduleSleepResponse {
  Status status = Status::kOk;
  /// Always true on the wire: a replayed (client, request) rebuilds the
  /// original acknowledgement byte-for-byte, so a client that retried a
  /// torn send cannot distinguish its transcript from an undisturbed run.
  bool newly_applied = false;
  /// Device's window count after the mutation.
  std::uint64_t windows = 0;

  std::string encode() const;
  static ScheduleSleepResponse parse(std::string_view payload);
};

struct StatusRequest {
  std::string encode() const;
  static StatusRequest parse(std::string_view payload);
};

/// Deterministic service state summary.  Volatile operational tallies
/// (requests served, evictions) are deliberately absent — they live in the
/// `fleet.service.*` metrics, so chaos cannot perturb response bytes.
struct StatusResponse {
  Status status = Status::kOk;
  std::uint64_t devices = 0;
  std::uint64_t windows = 0;
  /// Durable state sequence (mutations applied since genesis).
  std::uint64_t sequence = 0;
  bool draining = false;

  std::string encode() const;
  static StatusResponse parse(std::string_view payload);
};

/// Error / load-shed response, usable for any request type.
struct ErrorResponse {
  Status status = Status::kBadRequest;
  std::string message;

  std::string encode() const;
  static ErrorResponse parse(std::string_view payload);
};

// ---------------------------------------------------------------------------
// Volatile scrape channel (kMetrics / kProfile / kHealth).  These payloads
// are operational telemetry — chaos legitimately changes them, so they are
// served fresh on every call (no replay) and never enter transcripts.
// ---------------------------------------------------------------------------

/// "Send me your live metrics snapshot", optionally filtered by prefix.
struct MetricsRequest {
  /// Keep only metrics whose name starts with this ("" = everything).
  std::string prefix;

  std::string encode() const;
  static MetricsRequest parse(std::string_view payload);
};

/// The snapshot, rendered by `MetricsSnapshot::render()` (`key=value`
/// lines).  The text block is length-prefixed on the wire because metric
/// lines use `=` rather than the strict `key value` document grammar.
struct MetricsResponse {
  Status status = Status::kOk;
  std::string text;

  std::string encode() const;
  static MetricsResponse parse(std::string_view payload);
};

struct ProfileRequest {
  std::string encode() const;
  static ProfileRequest parse(std::string_view payload);
};

/// One kernel row of the daemon's `obs::profile_snapshot()`.
struct ProfileEntry {
  std::string kernel;
  std::uint64_t calls = 0;
  std::uint64_t total_ns = 0;
};

struct ProfileResponse {
  Status status = Status::kOk;
  /// Whether kernel profiling is even enabled daemon-side.
  bool profiling = false;
  std::vector<ProfileEntry> kernels;

  std::string encode() const;
  static ProfileResponse parse(std::string_view payload);
};

struct HealthRequest {
  std::string encode() const;
  static HealthRequest parse(std::string_view payload);
};

/// Liveness summary the dashboard polls: how long the daemon has run (in
/// poll iterations — its only notion of time), how loaded it is, and how
/// far its durable snapshot lags the in-memory sequence.
struct HealthResponse {
  Status status = Status::kOk;
  std::uint64_t poll_iterations = 0;
  std::uint64_t connections = 0;
  std::uint64_t connections_high_water = 0;
  std::uint64_t queue_depth_high_water = 0;
  std::uint64_t requests = 0;
  std::uint64_t shed = 0;
  /// Mutations applied since the last durable snapshot write.
  std::uint64_t snapshot_lag = 0;
  bool draining = false;

  std::string encode() const;
  static HealthResponse parse(std::string_view payload);
};

}  // namespace ash::fleet
