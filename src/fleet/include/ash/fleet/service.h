#pragma once

/// \file service.h
/// The resident fleet aging service behind `ash_fleetd` (ROADMAP item 1).
///
/// `Service` keeps the fleet substrate resident and answers concurrent
/// queries over a Unix-domain socket speaking the CRC-framed protocol of
/// ash/fleet/protocol.h:
///
///   * **margin**: "given this duty cycle, when does device X cross its
///     margin?" — the device's durable odometer estimate projected forward
///     with `mc::margin_outlook` (the paper's closed-form BTI law);
///   * **rejuvenation**: "which shard needs rejuvenation next epoch?" —
///     shards ranked by the fractional frequency degradation of their
///     newest *valid* durable campaign snapshot (`CheckpointStore`);
///   * **schedule-sleep**: the one mutation — book a recovery-sleep window
///     for a device, crash-consistently (see below);
///   * **status / ping**: deterministic state summary and liveness.
///
/// Robustness contract, pinned under `ctest -L faults`:
///
///   * every byte off the wire is adversarial — framing violations poison
///     the connection and it is dropped, exactly as `CheckpointStore`
///     refuses a torn snapshot;
///   * per-connection I/O deadlines evict slow-loris clients that park a
///     half-sent frame or never drain their responses;
///   * the per-tick request queue is bounded: requests beyond
///     `max_request_queue` are shed with `Status::kOverloaded` instead of
///     growing memory — explicit backpressure, never silent latency;
///   * mutations are **write-ahead**: the state snapshot (including the
///     idempotency table) is durably saved *before* the acknowledgement is
///     queued, so a daemon SIGKILLed between apply and ack replays the
///     original acknowledgement bytes when the client retries — a retrying
///     client can never double-book a window;
///   * SIGTERM drains gracefully: stop accepting, answer what is queued,
///     flush outboxes, persist a final snapshot, exit;
///   * restart loads the newest valid snapshot, so post-restart answers are
///     consistent with the last acknowledged state.
///
/// Operational tallies are published as `fleet.service.*` metrics through
/// `ash::obs`; they are deliberately kept out of response payloads so a
/// chaos-ridden run and an undisturbed run answer with identical bytes.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "ash/bti/closed_form.h"
#include "ash/fleet/checkpoint_store.h"
#include "ash/fleet/protocol.h"
#include "ash/obs/flight_recorder.h"
#include "ash/util/random.h"
#include "ash/util/units.h"

namespace ash::obs {
class Registry;
class Histogram;
}  // namespace ash::obs

namespace ash::fleet {

/// Service tunables.  Timings are host-time milliseconds — serving real
/// sockets is the one fleet layer that legitimately lives on the wall
/// clock; nothing here feeds back into the simulated physics.
struct ServiceConfig {
  /// Unix-domain socket path the daemon binds (re-created on startup).
  std::string socket_path;
  /// Directory for durable service-state snapshots (must exist, writable).
  std::string state_dir;
  /// Directory of fleet campaign snapshots the rejuvenation query ranks
  /// (typically FleetConfig::checkpoint_dir); empty disables the scan.
  std::string campaign_dir;
  /// Shard ids 0..shard_count-1 are scanned in `campaign_dir`.
  int shard_count = 0;
  /// Devices tracked (ids 0..devices-1).
  std::uint64_t devices = 64;
  /// Per-device aging budget (match mc::ReliabilityConfig).
  Volts margin{12e-3};
  /// Seed of the per-device aging priors (genesis state).
  std::uint64_t seed = default_seed(SeedStream::kFleetService);
  /// Closed-form physics of the margin projection.
  bti::ClosedFormParameters physics;

  /// Connection cap; clients beyond it are turned away at accept.
  int max_connections = 64;
  /// Requests admitted per tick; the rest are shed with kOverloaded.
  int max_request_queue = 8;
  /// Per-connection I/O deadline: a connection with a half-read frame or
  /// an undrained outbox idle this long is evicted (slow-loris defense).
  int io_timeout_ms = 2000;
  /// Poll tick; also bounds SIGTERM reaction latency.
  int poll_interval_ms = 20;
  /// When nonempty, the drain path writes the metrics snapshot here.
  std::string metrics_path;

  /// Request-path instrumentation switch: per-verb latency and queue-wait
  /// histograms.  Off, the request path performs no clock reads at all
  /// (null histogram pointers; see obs::ScopedLatencyTimer).
  bool instrument = true;
  /// When nonempty, the flight recorder persists here: at every durable
  /// state checkpoint, periodically from the poll loop, at drain, and
  /// best-effort from the fatal-signal handler.
  std::string flight_recorder_path;
  /// Ring capacity; 0 disables the recorder (record() = one branch).
  std::size_t flight_recorder_capacity = 256;
  /// Poll iterations between periodic flight-recorder persists.
  int flight_flush_every_polls = 64;
};

/// One booked recovery-sleep window.
struct SleepWindow {
  Seconds start{0.0};
  Seconds duration{0.0};
};

/// Durable per-device state.
struct DeviceAging {
  /// Odometer-style estimate of the device's current DeltaVth.
  Volts delta_vth{0.0};
  std::vector<SleepWindow> windows;
};

/// One applied mutation, remembered for idempotent replay: a retry of the
/// same (client, request) gets `windows_after` re-encoded into the exact
/// acknowledgement bytes the first delivery produced.
struct AppliedMutation {
  std::uint64_t client_id = 0;
  std::uint64_t request_id = 0;
  std::uint64_t windows_after = 0;
};

/// The service's durable state: a pure function of (genesis config, the
/// sequence of applied mutations).  Serializes as a line-oriented text
/// document framed by CheckpointStore — same discipline as campaign
/// snapshots, same newest-valid recovery.
struct ServiceState {
  std::uint64_t sequence = 0;  ///< mutations applied since genesis
  Volts margin{12e-3};
  std::vector<DeviceAging> devices;
  std::vector<AppliedMutation> applied;

  /// Fresh state: per-device aging priors drawn from `seed` (device i's
  /// DeltaVth uniform in [0, 0.9 * margin] on stream derive_seed(seed, i)).
  static ServiceState genesis(std::uint64_t device_count, Volts margin,
                              std::uint64_t seed);

  std::string serialize() const;
  /// Throws std::runtime_error naming the failing field on malformed
  /// input; never yields a partially-filled state.
  static ServiceState deserialize(std::string_view bytes);

  const AppliedMutation* find_applied(std::uint64_t client_id,
                                      std::uint64_t request_id) const;
  std::uint64_t total_windows() const;
};

/// Host-time operational tallies; everything here is timing- and
/// chaos-dependent, which is exactly why none of it appears in response
/// payloads.
struct ServiceStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_rejected = 0;  ///< over max_connections
  std::uint64_t evictions = 0;             ///< I/O deadline expiries
  std::uint64_t frame_errors = 0;          ///< poisoned readers dropped
  std::uint64_t requests = 0;              ///< admitted to the queue
  std::uint64_t shed = 0;                  ///< load-shed with kOverloaded
  std::uint64_t responses = 0;
  std::uint64_t mutations = 0;             ///< newly applied
  std::uint64_t replays = 0;               ///< idempotent re-acks
  std::uint64_t snapshots_saved = 0;

  std::string render() const;
  /// Set one `prefix`-named counter per field (same integers as the
  /// struct, so report and metrics can never disagree).
  void publish(obs::Registry& registry,
               const std::string& prefix = "fleet.service.") const;
};

/// The resident daemon.  Single-threaded poll loop; concurrency comes
/// from multiplexing connections, not threads (fork-safe, like the
/// supervisor it fronts).
class Service {
 public:
  /// Loads the newest valid state snapshot from `state_dir` (genesis when
  /// none verifies) and durably persists the starting state.  Throws
  /// std::runtime_error on an unusable state_dir or socket path,
  /// std::invalid_argument on nonsensical tunables.
  explicit Service(ServiceConfig config);

  /// Compute the response to one verified request frame, durably applying
  /// any mutation (write-ahead) before the acknowledgement is returned.
  /// Never throws on hostile payloads — they earn an ErrorResponse.
  /// Exposed for in-process tests; run() calls it per admitted request.
  Frame respond(const Frame& request);

  /// One tick's bounded-queue admission: the first `max_request_queue`
  /// requests are answered via respond(), the rest shed with a
  /// kOverloaded ErrorResponse.  Returns responses 1:1 with requests.
  std::vector<Frame> process_tick(const std::vector<Frame>& requests);

  /// Bind the socket and serve until SIGTERM/SIGINT, then drain: stop
  /// accepting, flush, persist a final snapshot, publish metrics, return.
  void run();

  const ServiceConfig& config() const { return config_; }
  const ServiceState& state() const { return state_; }
  const ServiceStats& stats() const { return stats_; }
  bool draining() const { return draining_; }

  /// Poll-loop liveness tallies behind the kHealthRequest scrape.
  struct Health {
    std::uint64_t poll_iterations = 0;
    std::uint64_t connections = 0;
    std::uint64_t connections_high_water = 0;
    std::uint64_t queue_depth_high_water = 0;
  };
  const Health& health() const { return health_; }

  /// Mutations applied but not yet durably snapshotted (0 outside of a
  /// write-ahead window, since save_state runs before every ack).
  std::uint64_t snapshot_lag() const {
    return state_.sequence - last_snapshot_sequence_;
  }

  const obs::FlightRecorder& flight_recorder() const { return recorder_; }

  /// Mirror every volatile tally (service stats, protocol tallies, health)
  /// into `registry` — what the metrics scrape and the drain-time metrics
  /// dump both call, so the two channels can never disagree.
  void publish_volatile(obs::Registry& registry) const;

 private:
  Frame respond_margin(const Frame& request);
  Frame respond_margin_batch(const Frame& request);
  Frame respond_rejuvenation(const Frame& request);
  Frame respond_schedule_sleep(const Frame& request);
  Frame respond_status(const Frame& request);
  Frame respond_metrics(const Frame& request);
  Frame respond_profile(const Frame& request);
  Frame respond_health(const Frame& request);
  void save_state();
  /// Best-effort atomic persist of the flight recorder (no-op when
  /// unconfigured; persistence failures are swallowed — telemetry must
  /// never take the daemon down).
  void persist_flight();
  /// Latency histogram for a request type (nullptr when uninstrumented).
  obs::Histogram* latency_histogram(MessageType type) const;

  ServiceConfig config_;
  CheckpointStore state_store_;
  bti::ClosedFormModel model_;
  ServiceState state_;
  ServiceStats stats_;
  Health health_;
  obs::FlightRecorder recorder_;
  std::uint64_t last_snapshot_sequence_ = 0;
  /// Registered once at construction, indexed by the raw request type;
  /// the request path only ever dereferences (lock-free).
  std::array<obs::Histogram*, 21> latency_{};
  obs::Histogram* queue_wait_ = nullptr;
  bool draining_ = false;
};

}  // namespace ash::fleet
