#pragma once

/// \file checkpoint_store.h
/// Durable, corruption-detecting persistence for campaign checkpoints.
///
/// `tb::CampaignCheckpoint` serializes as a line-oriented text document —
/// perfect for diffing, useless for crash safety: a torn write leaves a
/// prefix that still *looks* like a checkpoint up to the tear.  The fleet
/// store wraps that text payload in a versioned binary frame,
///
///   offset  size  field
///        0     8  magic "ASHFLT1\n"
///        8     4  format version (1, little-endian u32)
///       12     4  shard id (u32)
///       16     8  sequence number (u64; the campaign's next_phase)
///       24     8  payload size in bytes (u64)
///       32     4  CRC-32 of the payload
///       36     4  CRC-32 of bytes 0..35 (header self-check)
///       40     …  payload (the CampaignCheckpoint text document)
///
/// and persists it with `util::atomic_write_file` (write temp → fsync →
/// rename → fsync dir), so a snapshot file is either entirely present or
/// entirely absent.  Defense in depth: even if the filesystem breaks that
/// promise (or an adversary edits the file), `decode_snapshot` detects
/// truncation, trailing garbage, header tampering and payload bit-flips,
/// and `load_newest_valid` falls back to the newest snapshot that still
/// verifies — recovery never trusts unverified bytes.
///
/// One directory holds many shards' snapshots; files are named
/// `shard-<id>.seq-<sequence>.ckpt` so a directory listing is also a
/// recovery map.  Sequence numbers are monotone per shard (the campaign
/// phase index), which makes "newest" well-defined without trusting
/// mtimes.

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace ash::fleet {

/// Frame format version written by this build.
inline constexpr std::uint32_t kSnapshotVersion = 1;

/// Thrown by decode_snapshot when a frame fails verification; the message
/// names the failing check (magic, version, truncation, CRC, ...).
class CorruptSnapshot : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Encode one snapshot frame (header + CRCs + payload).
std::string frame_snapshot(int shard_id, std::uint64_t sequence,
                           std::string_view payload);

/// A verified frame.
struct DecodedSnapshot {
  int shard_id = 0;
  std::uint64_t sequence = 0;
  std::string payload;
};

/// Verify and unwrap a frame.  Throws CorruptSnapshot on any violation:
/// short header, bad magic/version, header CRC mismatch, payload length
/// mismatch (truncation or trailing garbage) or payload CRC mismatch.
DecodedSnapshot decode_snapshot(std::string_view bytes);

/// A snapshot recovered from disk, plus how many invalid files were
/// skipped to reach it (surfaced into the supervision stats).
struct LoadedSnapshot {
  std::uint64_t sequence = 0;
  std::string payload;
  int corrupt_skipped = 0;
};

/// Directory of framed snapshots, many shards per directory.
class CheckpointStore {
 public:
  /// The directory must exist and be writable; throws std::runtime_error
  /// otherwise (checked up front so a typo'd path fails in milliseconds,
  /// not after hours of campaign).
  explicit CheckpointStore(std::string directory);

  const std::string& directory() const { return directory_; }

  /// Durably persist one snapshot; returns the file path written.
  std::string save(int shard_id, std::uint64_t sequence,
                   std::string_view payload) const;

  /// Newest snapshot of the shard that passes verification, scanning
  /// sequence numbers downward and skipping corrupt/truncated files.
  /// nullopt when no file verifies.
  std::optional<LoadedSnapshot> load_newest_valid(int shard_id) const;

  /// Snapshot file paths of one shard, ascending by sequence (whether or
  /// not they verify).
  std::vector<std::string> shard_files(int shard_id) const;

  /// Delete all but the newest `keep` snapshot files of the shard
  /// (retention for long missions; validity is not consulted).
  void prune(int shard_id, std::size_t keep) const;

  /// Canonical file name for (shard, sequence).
  static std::string file_name(int shard_id, std::uint64_t sequence);

 private:
  std::string directory_;
};

}  // namespace ash::fleet
