#pragma once

/// \file fault.h
/// Process-level chaos injection for the fleet supervisor.
///
/// The tb/mc layers already inject *simulated* faults (dirty chambers,
/// dying cores).  A fleet of worker processes fails one layer further out:
/// workers get SIGKILLed mid-campaign, hang without heartbeating, and the
/// checkpoint files they just wrote get torn or bit-flipped.  Recovery
/// from *targeted* corruption is the threat model the wearout-attack
/// literature motivates — assume the failure is adversarial, not just
/// unlucky.
///
/// `FleetFaultPlan` describes such a hostile environment as a seeded
/// scenario, mirroring `tb::FaultPlan` / `mc::CoreFaultPlan`: every draw
/// derives from (plan.seed, shard, attempt) via splitmix streams, so the
/// same plan replays the same kills, stalls and corruptions bit-exactly —
/// the whole crash/recover/fall-back path is deterministic and testable
/// under `ctest -L faults`.
///
/// Enactment is worker-side: each worker attempt constructs a
/// `FleetFaultAgent` and faithfully sabotages itself (kill after N phase
/// checkpoints, stall without heartbeats, corrupt the newest snapshot file
/// before dying).  The supervisor has no idea the chaos harness exists —
/// it sees exactly what a real crash looks like.

#include <cstdint>
#include <string>
#include <string_view>

#include "ash/util/random.h"

namespace ash::fleet {

/// How a scheduled corruption mangles the newest snapshot file.
enum class SnapshotCorruption {
  kFlipBit = 0,   ///< one bit of the payload flipped (bit rot / tampering)
  kTruncate,      ///< file cut to a prefix (torn write)
  kTornHeader,    ///< file cut inside the 40-byte header (worst tear)
};

const char* to_string(SnapshotCorruption kind);

/// A complete, seeded process-chaos scenario.  Default = no chaos.
struct FleetFaultPlan {
  /// Worker attempts 0..kill_attempts-1 of every shard raise SIGKILL on
  /// themselves after completing a drawn number of phase checkpoints (or
  /// at the completion boundary, when the shard's campaign is shorter
  /// than the draw — a scheduled kill always fires).
  int kill_attempts = 0;
  /// Range of phase checkpoints a doomed attempt completes before dying
  /// (>= 1 guarantees forward progress across restarts; when the attempt
  /// also corrupts, the draw is clamped to >= 2 so the fall-back to the
  /// previous snapshot still nets one phase per attempt).
  int min_phases_before_kill = 1;
  int max_phases_before_kill = 2;
  /// Worker attempts 0..stall_attempts-1 hang (no heartbeat) for
  /// `stall_ms` before starting work — the supervisor must detect the
  /// missed deadline and SIGKILL them.
  int stall_attempts = 0;
  double stall_ms = 0.0;
  /// Worker attempts 0..corrupt_attempts-1 corrupt the newest snapshot
  /// file (kind drawn per attempt) just before their scheduled death.
  int corrupt_attempts = 0;

  // --- Protocol chaos (enacted client-side by fleet::Client against a
  // --- resident ash_fleetd; the daemon sees real broken connections).
  /// Delivery attempts 0..n-1 of every request drop the connection before
  /// the frame is sent (the daemon sees a silent disconnect).
  int proto_drop_attempts = 0;
  /// Following attempts send a drawn prefix of the frame, then disconnect
  /// mid-frame (the wire analog of a torn snapshot write).
  int proto_truncate_attempts = 0;
  /// Following attempts stall for `proto_stall_ms` mid-frame — the
  /// slow-loris the daemon must evict on its write/read deadline.
  int proto_stall_attempts = 0;
  double proto_stall_ms = 0.0;
  /// SIGKILL the daemon before every Nth request (0 = never); the drill
  /// harness owns the pid and restarts it from its newest durable
  /// snapshot.
  int proto_kill_every = 0;

  /// Root seed of every chaos draw.
  std::uint64_t seed = default_seed(SeedStream::kFleetFaultPlan);

  /// True when no chaos channel is enabled.
  bool ideal() const;

  /// Presets.  "kill" SIGKILLs every worker once; "torn" additionally
  /// corrupts the snapshot it just wrote (forcing fall-back recovery);
  /// "full" adds a heartbeat stall.  All recover to a bit-identical
  /// payload; "full" just takes the scenic route.  "protocol" leaves the
  /// workers alone and attacks the service wire instead: dropped
  /// connections, mid-frame truncation, stalled writes and daemon SIGKILL
  /// between requests — the retrying client still converges to a
  /// byte-identical transcript.
  static FleetFaultPlan none();
  static FleetFaultPlan kill();
  static FleetFaultPlan torn();
  static FleetFaultPlan full();
  static FleetFaultPlan protocol();
  /// Lookup by name ("none" | "kill" | "torn" | "full" | "protocol");
  /// throws std::invalid_argument for unknown names.
  static FleetFaultPlan by_name(const std::string& name);
};

/// The chaos schedule of one (shard, attempt), drawn at construction.
class FleetFaultAgent {
 public:
  FleetFaultAgent(const FleetFaultPlan& plan, int shard_id, int attempt);

  bool kill_scheduled() const { return kill_scheduled_; }
  /// Phase checkpoints this attempt completes before raising SIGKILL.
  int kill_after_phases() const { return kill_after_phases_; }

  bool stall_scheduled() const { return stall_scheduled_; }
  double stall_ms() const { return stall_ms_; }

  bool corrupt_scheduled() const { return corrupt_scheduled_; }
  SnapshotCorruption corruption_kind() const { return corruption_kind_; }

  /// The scheduled corruption applied to a framed snapshot: returns the
  /// mangled bytes (pure, for tests).
  std::string corrupted(std::string_view snapshot_bytes) const;

  /// Overwrite `path` in place with corrupted(file contents) — a
  /// deliberately non-atomic write, because simulating a torn write with
  /// the crash-safe path would be cheating.
  void corrupt_file(const std::string& path) const;

 private:
  bool kill_scheduled_ = false;
  int kill_after_phases_ = 0;
  bool stall_scheduled_ = false;
  double stall_ms_ = 0.0;
  bool corrupt_scheduled_ = false;
  SnapshotCorruption corruption_kind_ = SnapshotCorruption::kFlipBit;
  std::uint64_t flip_draw_ = 0;     ///< selects the flipped bit
  std::uint64_t truncate_draw_ = 0; ///< selects the tear point
};

/// The wire-chaos schedule of one (request index, delivery attempt),
/// drawn at construction — the protocol analog of FleetFaultAgent.
/// Sabotage channels are assigned to successive attempts (drop, then
/// truncate, then stall) so a bounded retry budget always outlasts the
/// chaos; the tear/stall offsets are seeded draws per (request, attempt).
class ProtocolChaosAgent {
 public:
  ProtocolChaosAgent(const FleetFaultPlan& plan, int request_index,
                     int attempt);

  /// Close the connection instead of sending anything.
  bool drop_scheduled() const { return drop_scheduled_; }
  /// Send cut_point() bytes of the frame, then close.
  bool truncate_scheduled() const { return truncate_scheduled_; }
  /// Send cut_point() bytes, stall stall_ms(), then send the rest.
  bool stall_scheduled() const { return stall_scheduled_; }
  double stall_ms() const { return stall_ms_; }
  /// SIGKILL the daemon (harness hook) before this request goes out.
  bool kill_daemon_scheduled() const { return kill_daemon_scheduled_; }

  /// Drawn mid-frame offset in [1, frame_size - 1] (0 for an empty frame).
  std::size_t cut_point(std::size_t frame_size) const;

 private:
  bool drop_scheduled_ = false;
  bool truncate_scheduled_ = false;
  bool stall_scheduled_ = false;
  double stall_ms_ = 0.0;
  bool kill_daemon_scheduled_ = false;
  std::uint64_t cut_draw_ = 0;  ///< selects the mid-frame offset
};

}  // namespace ash::fleet
