#pragma once

/// \file fault.h
/// Process-level chaos injection for the fleet supervisor.
///
/// The tb/mc layers already inject *simulated* faults (dirty chambers,
/// dying cores).  A fleet of worker processes fails one layer further out:
/// workers get SIGKILLed mid-campaign, hang without heartbeating, and the
/// checkpoint files they just wrote get torn or bit-flipped.  Recovery
/// from *targeted* corruption is the threat model the wearout-attack
/// literature motivates — assume the failure is adversarial, not just
/// unlucky.
///
/// `FleetFaultPlan` describes such a hostile environment as a seeded
/// scenario, mirroring `tb::FaultPlan` / `mc::CoreFaultPlan`: every draw
/// derives from (plan.seed, shard, attempt) via splitmix streams, so the
/// same plan replays the same kills, stalls and corruptions bit-exactly —
/// the whole crash/recover/fall-back path is deterministic and testable
/// under `ctest -L faults`.
///
/// Enactment is worker-side: each worker attempt constructs a
/// `FleetFaultAgent` and faithfully sabotages itself (kill after N phase
/// checkpoints, stall without heartbeats, corrupt the newest snapshot file
/// before dying).  The supervisor has no idea the chaos harness exists —
/// it sees exactly what a real crash looks like.

#include <cstdint>
#include <string>
#include <string_view>

#include "ash/util/random.h"

namespace ash::fleet {

/// How a scheduled corruption mangles the newest snapshot file.
enum class SnapshotCorruption {
  kFlipBit = 0,   ///< one bit of the payload flipped (bit rot / tampering)
  kTruncate,      ///< file cut to a prefix (torn write)
  kTornHeader,    ///< file cut inside the 40-byte header (worst tear)
};

const char* to_string(SnapshotCorruption kind);

/// A complete, seeded process-chaos scenario.  Default = no chaos.
struct FleetFaultPlan {
  /// Worker attempts 0..kill_attempts-1 of every shard raise SIGKILL on
  /// themselves after completing a drawn number of phase checkpoints (or
  /// at the completion boundary, when the shard's campaign is shorter
  /// than the draw — a scheduled kill always fires).
  int kill_attempts = 0;
  /// Range of phase checkpoints a doomed attempt completes before dying
  /// (>= 1 guarantees forward progress across restarts; when the attempt
  /// also corrupts, the draw is clamped to >= 2 so the fall-back to the
  /// previous snapshot still nets one phase per attempt).
  int min_phases_before_kill = 1;
  int max_phases_before_kill = 2;
  /// Worker attempts 0..stall_attempts-1 hang (no heartbeat) for
  /// `stall_ms` before starting work — the supervisor must detect the
  /// missed deadline and SIGKILL them.
  int stall_attempts = 0;
  double stall_ms = 0.0;
  /// Worker attempts 0..corrupt_attempts-1 corrupt the newest snapshot
  /// file (kind drawn per attempt) just before their scheduled death.
  int corrupt_attempts = 0;
  /// Root seed of every chaos draw.
  std::uint64_t seed = default_seed(SeedStream::kFleetFaultPlan);

  /// True when no chaos channel is enabled.
  bool ideal() const;

  /// Presets.  "kill" SIGKILLs every worker once; "torn" additionally
  /// corrupts the snapshot it just wrote (forcing fall-back recovery);
  /// "full" adds a heartbeat stall.  All recover to a bit-identical
  /// payload; "full" just takes the scenic route.
  static FleetFaultPlan none();
  static FleetFaultPlan kill();
  static FleetFaultPlan torn();
  static FleetFaultPlan full();
  /// Lookup by name ("none" | "kill" | "torn" | "full"); throws
  /// std::invalid_argument for unknown names.
  static FleetFaultPlan by_name(const std::string& name);
};

/// The chaos schedule of one (shard, attempt), drawn at construction.
class FleetFaultAgent {
 public:
  FleetFaultAgent(const FleetFaultPlan& plan, int shard_id, int attempt);

  bool kill_scheduled() const { return kill_scheduled_; }
  /// Phase checkpoints this attempt completes before raising SIGKILL.
  int kill_after_phases() const { return kill_after_phases_; }

  bool stall_scheduled() const { return stall_scheduled_; }
  double stall_ms() const { return stall_ms_; }

  bool corrupt_scheduled() const { return corrupt_scheduled_; }
  SnapshotCorruption corruption_kind() const { return corruption_kind_; }

  /// The scheduled corruption applied to a framed snapshot: returns the
  /// mangled bytes (pure, for tests).
  std::string corrupted(std::string_view snapshot_bytes) const;

  /// Overwrite `path` in place with corrupted(file contents) — a
  /// deliberately non-atomic write, because simulating a torn write with
  /// the crash-safe path would be cheating.
  void corrupt_file(const std::string& path) const;

 private:
  bool kill_scheduled_ = false;
  int kill_after_phases_ = 0;
  bool stall_scheduled_ = false;
  double stall_ms_ = 0.0;
  bool corrupt_scheduled_ = false;
  SnapshotCorruption corruption_kind_ = SnapshotCorruption::kFlipBit;
  std::uint64_t flip_draw_ = 0;     ///< selects the flipped bit
  std::uint64_t truncate_draw_ = 0; ///< selects the tear point
};

}  // namespace ash::fleet
