#pragma once

/// \file supervisor.h
/// Supervised multi-process shard runner — the `ash_fleet` seed.
///
/// The fleet manager of ROADMAP item 1 tracks aging for millions of
/// devices; before it can be a service it must be a *survivor*.  This
/// layer shards a multi-chip campaign across forked worker processes and
/// keeps the campaign alive through worker crashes, hangs and checkpoint
/// corruption:
///
///   * each worker advances its shard one phase at a time, persisting a
///     durable CRC-framed snapshot (ash/fleet/checkpoint_store.h) after
///     every phase and writing a heartbeat byte down a pipe;
///   * the supervisor polls heartbeats against a deadline; a dead worker
///     (nonzero exit, signal) or a hung one (missed deadline → SIGKILL)
///     earns the shard a strike and a restart from the newest snapshot
///     that still verifies, behind capped exponential backoff;
///   * a shard that keeps striking is quarantined after `max_restarts`
///     failures — the fleet report still ships, carrying the shard's last
///     valid partial state with a quality flag (mirroring the per-sample
///     quality flags of `tb::DataLog`) instead of failing the whole run.
///
/// Determinism contract: the *payload* of the fleet report (per-shard
/// completion, phase counts, fault tallies and sample logs) is a pure
/// function of (shard specs, runner config, chaos plan) — campaign resume
/// is bit-exact, so any interleaving of crashes and restarts converges to
/// the same bytes.  Host-time effects (who got restarted when, how long
/// backoffs waited) live in `SupervisionStats`, outside the payload.
/// `ctest -L faults` pins both halves of that contract.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "ash/fleet/checkpoint_store.h"
#include "ash/fleet/fault.h"
#include "ash/fpga/chip.h"
#include "ash/tb/experiment_runner.h"
#include "ash/tb/test_case.h"

namespace ash::obs {
class Registry;
}  // namespace ash::obs

namespace ash::fleet {

/// One shard: a chip (construction parameters are the schema) plus the
/// campaign schedule to run on it.
struct ShardSpec {
  int shard_id = 0;
  fpga::ChipConfig chip;
  tb::TestCase test_case;
};

/// Supervision policy.  Timings are host-time milliseconds — process
/// supervision is the one layer that legitimately lives on the wall
/// clock; nothing here feeds back into the simulated physics.
struct FleetConfig {
  /// Directory for durable snapshots (must exist and be writable).
  std::string checkpoint_dir;
  /// Runner configuration shared by every shard (instrument streams
  /// derive per (seed, phase, attempt), so sharing is bit-safe).
  tb::RunnerConfig runner;
  /// Phases a worker advances between durable snapshots (>= 1).
  int phases_per_checkpoint = 1;
  /// Restarts a shard may consume before quarantine.
  int max_restarts = 3;
  /// Heartbeat deadline: a worker silent this long is declared hung.
  int heartbeat_timeout_ms = 5000;
  /// Capped exponential restart backoff.
  int backoff_initial_ms = 10;
  double backoff_multiplier = 2.0;
  int backoff_max_ms = 500;
  /// Process-chaos scenario injected into the workers (default: none).
  FleetFaultPlan chaos;
};

/// Shard-level quality flag, the process analog of tb::SampleQuality:
/// degradation is reported, never silently dropped.
enum class ShardQuality {
  kClean = 0,      ///< completed, zero restarts
  kRecovered = 1,  ///< completed after >= 1 restart from a snapshot
  kQuarantined = 2,  ///< strikes exhausted; carries last valid state only
};

const char* to_string(ShardQuality quality);

/// End state of one shard.
struct ShardOutcome {
  int shard_id = 0;
  int chip_id = 0;
  ShardQuality quality = ShardQuality::kClean;
  bool completed = false;  ///< campaign ran every phase
  int restarts = 0;
  int phases_done = 0;
  int phases_total = 0;
  int corrupt_snapshots_skipped = 0;  ///< invalid files recovery stepped over
  /// Last durable state (final when completed, newest valid otherwise).
  /// Meaningless when have_state is false (no snapshot ever verified).
  tb::CampaignCheckpoint state;
  bool have_state = false;
};

/// Host-time supervision tallies — everything timing-dependent lives
/// here, outside the deterministic payload.
struct SupervisionStats {
  int workers_launched = 0;
  int worker_crashes = 0;       ///< nonzero exit or death by signal
  int heartbeat_timeouts = 0;   ///< hung workers the supervisor SIGKILLed
  int restarts = 0;
  int backoffs = 0;
  double backoff_total_ms = 0.0;
  int quarantined = 0;
  int corrupt_snapshots_skipped = 0;

  /// Multi-line human-readable summary.
  std::string render() const;
  /// Set one `prefix`-named counter per field (same integers as the
  /// struct, so report and metrics can never disagree).
  void publish(obs::Registry& registry,
               const std::string& prefix = "fleet.") const;
};

/// The fleet-level result: per-shard outcomes (sorted by shard id) plus
/// the supervision tallies.
struct FleetReport {
  std::vector<ShardOutcome> shards;
  SupervisionStats stats;

  /// Deterministic science payload: versioned header, then per shard its
  /// completion state, fault tallies and full sample log CSV.  Two runs
  /// of the same (specs, runner, chaos plan) produce identical bytes no
  /// matter how the crashes interleaved — this is what tests and
  /// operators diff.
  void write_payload(std::ostream& os) const;
  std::string payload() const;
  /// CRC-32 of payload(), the one-line fingerprint the tool prints.
  std::uint32_t payload_crc() const;

  /// Human-readable per-shard table + supervision summary (includes the
  /// timing-dependent half; not part of the determinism contract).
  std::string render() const;

  /// True when every shard completed (no quarantine).
  bool all_completed() const;
};

/// Forks, feeds and buries shard workers.  Single-threaded by design:
/// fork(2) and threads do not mix.
class FleetSupervisor {
 public:
  /// Throws std::invalid_argument on duplicate shard ids or an empty
  /// spec list; throws std::runtime_error when checkpoint_dir is unusable.
  FleetSupervisor(FleetConfig config, std::vector<ShardSpec> shards);

  /// Run every shard to completion (or quarantine) and return the report.
  FleetReport run();

  const FleetConfig& config() const { return config_; }

 private:
  FleetConfig config_;
  std::vector<ShardSpec> shards_;
};

/// The paper's five-chip campaign as a fleet, extended cyclically to
/// `count` shards (shard i runs paper case i % 5 on a chip seeded
/// derive_seed(seed, i)) — the stock workload of `ash_fleet` and the
/// chaos tests.
std::vector<ShardSpec> paper_fleet_shards(int count, std::uint64_t seed,
                                          int ro_stages = 75);

}  // namespace ash::fleet
