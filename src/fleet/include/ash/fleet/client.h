#pragma once

/// \file client.h
/// Retrying client for the fleet aging service.
///
/// `Client` speaks the ash/fleet/protocol.h frame format to an
/// `ash_fleetd` socket and absorbs every transient failure the service's
/// threat model allows: refused/reset connections, mid-frame tears, I/O
/// timeouts, load-shed (kOverloaded) responses and daemon restarts.  Every
/// delivery attempt of a request reuses the *same* request id, so the
/// daemon's idempotency table guarantees a retried mutation is applied
/// exactly once.  Reconnects back off exponentially with a cap, mirroring
/// the supervisor's restart backoff.
///
/// The client records a **transcript**: the canonical request and response
/// frame bytes of every *completed* call, in call order — retries, drops
/// and shed responses never appear.  Because the daemon's answers are a
/// pure function of its durable state, a chaos-ridden session's transcript
/// is byte-identical to an undisturbed one; `ctest -L faults` and the
/// `ash_fleetd drill` CI job pin exactly that.
///
/// Chaos enactment is client-side (the protocol channels of
/// `FleetFaultPlan`): the client faithfully sabotages its own deliveries —
/// dropped connections, torn frames, stalled writes — and invokes the
/// harness-owned `kill_daemon` hook, so the daemon under test experiences
/// real broken sockets, exactly as workers self-sabotage under
/// `FleetFaultAgent`.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "ash/fleet/fault.h"
#include "ash/fleet/protocol.h"

namespace ash::obs {
class Registry;
class Histogram;
}  // namespace ash::obs

namespace ash::fleet {

/// Client tunables (host-time milliseconds).
struct ClientConfig {
  std::string socket_path;
  /// Idempotency namespace: (client_id, request id) keys mutations.
  std::uint64_t client_id = 1;
  /// Delivery attempts per call before giving up.
  int max_attempts = 12;
  /// Capped exponential backoff between attempts.
  int backoff_initial_ms = 2;
  double backoff_multiplier = 2.0;
  int backoff_max_ms = 100;
  /// Deadline for one response read (and one connect).
  int io_timeout_ms = 2000;
  /// Protocol chaos channels (proto_* fields); others are ignored.
  FleetFaultPlan chaos;
  /// Harness hook for proto_kill_every: SIGKILL the daemon and restart it
  /// from its newest snapshot, synchronously.  Unset = channel disabled.
  std::function<void()> kill_daemon;
  /// Round-trip latency histogram (`fleet.client.rtt_s`).  Off, the call
  /// path performs no clock reads for instrumentation.
  bool instrument = true;
};

/// Host-time client tallies (never part of the transcript).
struct ClientStats {
  std::uint64_t calls = 0;  ///< completed calls
  std::uint64_t attempts = 0;
  std::uint64_t reconnects = 0;
  std::uint64_t io_failures = 0;  ///< timeouts, EOFs, resets, frame errors
  std::uint64_t overloaded_retries = 0;
  std::uint64_t drops_injected = 0;
  std::uint64_t truncations_injected = 0;
  std::uint64_t stalls_injected = 0;
  std::uint64_t daemon_kills_injected = 0;
  double backoff_total_ms = 0.0;

  std::string render() const;
  /// Set one `prefix`-named metric per field — the client side of the
  /// telemetry loop lands in the same registry as the daemon's.
  void publish(obs::Registry& registry,
               const std::string& prefix = "fleet.client.") const;
};

/// Scrape request ids carry the top bit so they can never collide with
/// the sequential ids of transcripted calls in the daemon's idempotency
/// table, and never shift them.
inline constexpr std::uint64_t kScrapeIdBase = std::uint64_t{1} << 63;

/// One connection's worth of client.  Not thread-safe; one per caller.
class Client {
 public:
  explicit Client(ClientConfig config);
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Send one request payload and return the verified response frame,
  /// retrying (same request id) through every transient failure.  Throws
  /// std::runtime_error when max_attempts deliveries all fail.
  Frame call(MessageType type, const std::string& payload);

  /// Typed conveniences.  They throw std::runtime_error when the daemon
  /// answers with a terminal ErrorResponse (bad request/unknown device);
  /// use call() to observe those responses directly.
  bool ping();
  MarginResponse margin(const MarginRequest& request);
  /// Whole-shard margin query; rows are bit-identical to per-device
  /// margin() calls under the same schedule.
  MarginBatchResponse margin_batch(const MarginBatchRequest& request);
  RejuvenationResponse rejuvenation(const RejuvenationRequest& request);
  /// Stamps the request with this client's id before sending.
  ScheduleSleepResponse schedule_sleep(ScheduleSleepRequest request);
  StatusResponse status();

  /// Send `payloads.size()` requests of one type in a single write (one
  /// burst, no waiting between them) and read every response — the
  /// deterministic way to observe the daemon's bounded-queue backpressure.
  /// No chaos, no retries; shed responses come back as kErrorResponse
  /// frames.  Burst calls do not enter the transcript.
  std::vector<Frame> burst(MessageType type,
                           const std::vector<std::string>& payloads);

  /// Send one request on the volatile scrape channel and return the
  /// verified response.  Same retry/backoff machinery as call(), but no
  /// chaos injection, no chaos stream index consumed, the frames never
  /// enter the transcript, and the request id comes from a separate
  /// (high-bit-tagged) counter — a mid-session scrape cannot perturb the
  /// transcript-identity gate by construction, no matter how the two
  /// drill sessions interleave their scrapes.
  Frame scrape(MessageType type, const std::string& payload);

  /// Typed scrape conveniences (throw on terminal error answers).
  MetricsResponse metrics(const std::string& prefix = "");
  ProfileResponse profile();
  HealthResponse health();

  /// Canonical (request, response) frame bytes of every completed call.
  const std::string& transcript() const { return transcript_; }
  const ClientStats& stats() const { return stats_; }

 private:
  bool ensure_connected();
  void disconnect();
  bool send_all(std::string_view bytes);
  bool read_frame(Frame& out, std::uint64_t expect_request_id);
  void backoff(int attempt);

  ClientConfig config_;
  int fd_ = -1;
  std::uint64_t next_request_id_ = 1;
  /// Scrape ids live in their own tagged space so watching a session never
  /// shifts the ids (hence the bytes) of its transcripted calls.
  std::uint64_t next_scrape_id_ = kScrapeIdBase;
  int request_index_ = 0;  ///< chaos stream index, one per call()
  std::string transcript_;
  ClientStats stats_;
  obs::Histogram* rtt_hist_ = nullptr;  ///< null when uninstrumented
};

}  // namespace ash::fleet
