#include "ash/fleet/fault.h"

#include <algorithm>
#include <fstream>
#include <stdexcept>

#include "ash/util/atomic_file.h"

namespace ash::fleet {

const char* to_string(SnapshotCorruption kind) {
  switch (kind) {
    case SnapshotCorruption::kFlipBit: return "flip-bit";
    case SnapshotCorruption::kTruncate: return "truncate";
    case SnapshotCorruption::kTornHeader: return "torn-header";
  }
  return "unknown";
}

bool FleetFaultPlan::ideal() const {
  return kill_attempts <= 0 && stall_attempts <= 0 && corrupt_attempts <= 0 &&
         proto_drop_attempts <= 0 && proto_truncate_attempts <= 0 &&
         proto_stall_attempts <= 0 && proto_kill_every <= 0;
}

FleetFaultPlan FleetFaultPlan::none() { return {}; }

FleetFaultPlan FleetFaultPlan::kill() {
  FleetFaultPlan plan;
  plan.kill_attempts = 1;
  return plan;
}

FleetFaultPlan FleetFaultPlan::torn() {
  FleetFaultPlan plan;
  plan.kill_attempts = 1;
  plan.corrupt_attempts = 1;
  plan.min_phases_before_kill = 2;
  plan.max_phases_before_kill = 3;
  return plan;
}

FleetFaultPlan FleetFaultPlan::full() {
  FleetFaultPlan plan = torn();
  // Attempt 0 stalls first; under a tight heartbeat deadline the
  // supervisor SIGKILLs it mid-stall, before it reaches its own scheduled
  // kill.  Scheduling kills/corruptions on two attempts guarantees the
  // corruption path runs no matter how the stall resolves.
  plan.kill_attempts = 2;
  plan.corrupt_attempts = 2;
  plan.stall_attempts = 1;
  plan.stall_ms = 1500.0;
  return plan;
}

FleetFaultPlan FleetFaultPlan::protocol() {
  FleetFaultPlan plan;
  // One sabotaged delivery per channel per request: attempt 0 drops the
  // connection, attempt 1 tears the frame mid-send, attempt 2 slow-lorises
  // past the daemon's I/O deadline — attempt 3 is the first honest one, so
  // a retry budget of a handful always converges.
  plan.proto_drop_attempts = 1;
  plan.proto_truncate_attempts = 1;
  plan.proto_stall_attempts = 1;
  plan.proto_stall_ms = 400.0;
  plan.proto_kill_every = 3;
  return plan;
}

FleetFaultPlan FleetFaultPlan::by_name(const std::string& name) {
  if (name == "none") return none();
  if (name == "kill") return kill();
  if (name == "torn") return torn();
  if (name == "full") return full();
  if (name == "protocol") return protocol();
  throw std::invalid_argument("unknown fleet fault plan '" + name +
                              "' (none|kill|torn|full|protocol)");
}

FleetFaultAgent::FleetFaultAgent(const FleetFaultPlan& plan, int shard_id,
                                 int attempt) {
  // One independent stream per (shard, attempt), mirroring FaultInjector's
  // (plan seed, phase, attempt) derivation: replays are bit-exact and a
  // restart (attempt + 1) sees a fresh schedule.
  Rng rng(derive_seed(derive_seed(plan.seed,
                                  static_cast<std::uint64_t>(shard_id)),
                      static_cast<std::uint64_t>(attempt)));

  kill_scheduled_ = attempt < plan.kill_attempts;
  stall_scheduled_ = attempt < plan.stall_attempts && plan.stall_ms > 0.0;
  stall_ms_ = plan.stall_ms;
  corrupt_scheduled_ = kill_scheduled_ && attempt < plan.corrupt_attempts;

  int lo = std::max(1, plan.min_phases_before_kill);
  int hi = std::max(lo, plan.max_phases_before_kill);
  // A corrupting death must leave at least one *older* snapshot that nets
  // forward progress, or the fleet could livelock into quarantine.
  if (corrupt_scheduled_) lo = std::max(lo, 2);
  hi = std::max(lo, hi);
  kill_after_phases_ =
      lo + static_cast<int>(rng.uniform_index(
               static_cast<std::uint64_t>(hi - lo + 1)));
  corruption_kind_ = static_cast<SnapshotCorruption>(rng.uniform_index(3));
  flip_draw_ = rng();
  truncate_draw_ = rng();
}

std::string FleetFaultAgent::corrupted(std::string_view bytes) const {
  std::string out(bytes);
  if (out.empty()) return out;
  switch (corruption_kind_) {
    case SnapshotCorruption::kFlipBit: {
      const std::size_t bit = flip_draw_ % (out.size() * 8);
      out[bit / 8] = static_cast<char>(out[bit / 8] ^ (1u << (bit % 8)));
      return out;
    }
    case SnapshotCorruption::kTruncate: {
      // Tear somewhere in the payload (keep at least the header so the
      // length check, not the magic check, has to catch it).
      const std::size_t lo = std::min<std::size_t>(40, out.size() - 1);
      out.resize(lo + truncate_draw_ % (out.size() - lo));
      return out;
    }
    case SnapshotCorruption::kTornHeader: {
      out.resize(truncate_draw_ % std::min<std::size_t>(40, out.size()));
      return out;
    }
  }
  return out;
}

ProtocolChaosAgent::ProtocolChaosAgent(const FleetFaultPlan& plan,
                                       int request_index, int attempt) {
  // One independent stream per (request, attempt), mirroring the
  // (shard, attempt) derivation of FleetFaultAgent.
  Rng rng(derive_seed(derive_seed(plan.seed,
                                  0x50524F544FULL ^ static_cast<std::uint64_t>(
                                                        request_index)),
                      static_cast<std::uint64_t>(attempt)));

  // Channels claim successive attempt slots: [0, drop) drop, then
  // [drop, drop+truncate) truncate, then stalls.  Deterministic per
  // attempt, so the retry count needed to get through is bounded by the
  // sum of the channel budgets.
  const int drop_end = std::max(0, plan.proto_drop_attempts);
  const int trunc_end = drop_end + std::max(0, plan.proto_truncate_attempts);
  const int stall_end = trunc_end + std::max(0, plan.proto_stall_attempts);
  drop_scheduled_ = attempt < drop_end;
  truncate_scheduled_ = attempt >= drop_end && attempt < trunc_end;
  stall_scheduled_ = attempt >= trunc_end && attempt < stall_end &&
                     plan.proto_stall_ms > 0.0;
  stall_ms_ = plan.proto_stall_ms;
  kill_daemon_scheduled_ = plan.proto_kill_every > 0 && attempt == 0 &&
                           request_index > 0 &&
                           request_index % plan.proto_kill_every == 0;
  cut_draw_ = rng();
}

std::size_t ProtocolChaosAgent::cut_point(std::size_t frame_size) const {
  if (frame_size < 2) return 0;
  return 1 + static_cast<std::size_t>(cut_draw_ % (frame_size - 1));
}

void FleetFaultAgent::corrupt_file(const std::string& path) const {
  const std::string mangled = corrupted(util::read_file(path));
  // Plain truncating overwrite, no temp file, no fsync: this *is* the torn
  // write the durable path exists to defend against.
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) {
    throw std::runtime_error("chaos: cannot rewrite '" + path + "'");
  }
  os.write(mangled.data(), static_cast<std::streamsize>(mangled.size()));
  os.flush();
  if (!os) {
    throw std::runtime_error("chaos: short rewrite of '" + path + "'");
  }
}

}  // namespace ash::fleet
