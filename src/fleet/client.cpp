#include "ash/fleet/client.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "ash/obs/metrics.h"
#include "ash/util/syscall.h"
#include "ash/util/table.h"

namespace ash::fleet {

namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void sleep_ms(double ms) {
  if (ms <= 0.0) return;
  timespec ts;
  ts.tv_sec = static_cast<time_t>(ms / 1000.0);
  ts.tv_nsec = static_cast<long>((ms - 1000.0 * static_cast<double>(ts.tv_sec)) * 1e6);
  (void)util::retry_eintr([&] { return ::nanosleep(&ts, &ts); });
}

/// Terminal (non-retryable) error statuses: the daemon *did* answer; the
/// answer is deterministic, so retrying cannot change it.
bool retryable_status(Status status) {
  return status == Status::kOverloaded || status == Status::kShuttingDown;
}

}  // namespace

std::string ClientStats::render() const {
  std::string out = "client stats:\n";
  out += strformat("  calls        %llu (attempts %llu, reconnects %llu)\n",
                   static_cast<unsigned long long>(calls),
                   static_cast<unsigned long long>(attempts),
                   static_cast<unsigned long long>(reconnects));
  out += strformat("  io failures  %llu, overloaded retries %llu\n",
                   static_cast<unsigned long long>(io_failures),
                   static_cast<unsigned long long>(overloaded_retries));
  out += strformat(
      "  chaos        drops %llu, tears %llu, stalls %llu, kills %llu\n",
      static_cast<unsigned long long>(drops_injected),
      static_cast<unsigned long long>(truncations_injected),
      static_cast<unsigned long long>(stalls_injected),
      static_cast<unsigned long long>(daemon_kills_injected));
  out += strformat("  backoff      %.1f ms total\n", backoff_total_ms);
  return out;
}

void ClientStats::publish(obs::Registry& registry,
                          const std::string& prefix) const {
  registry.counter(prefix + "calls").set(calls);
  registry.counter(prefix + "attempts").set(attempts);
  registry.counter(prefix + "reconnects").set(reconnects);
  registry.counter(prefix + "io_failures").set(io_failures);
  registry.counter(prefix + "overloaded_retries").set(overloaded_retries);
  registry.counter(prefix + "chaos.drops").set(drops_injected);
  registry.counter(prefix + "chaos.truncations").set(truncations_injected);
  registry.counter(prefix + "chaos.stalls").set(stalls_injected);
  registry.counter(prefix + "chaos.daemon_kills").set(daemon_kills_injected);
  registry.gauge(prefix + "backoff_total_ms").set(backoff_total_ms);
}

Client::Client(ClientConfig config) : config_(std::move(config)) {
  if (config_.max_attempts < 1) {
    throw std::invalid_argument("client: max_attempts must be >= 1");
  }
  sockaddr_un addr{};
  if (config_.socket_path.empty() ||
      config_.socket_path.size() >= sizeof addr.sun_path) {
    throw std::invalid_argument("client: bad socket path '" +
                                config_.socket_path + "'");
  }
  if (config_.instrument) {
    rtt_hist_ = &obs::registry().histogram("fleet.client.rtt_s",
                                           obs::HistogramOptions{1e-6, 1e2, 4});
  }
}

Client::~Client() { disconnect(); }

void Client::disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Client::ensure_connected() {
  if (fd_ >= 0) return true;
  const int fd =
      ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return false;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, config_.socket_path.c_str(),
               sizeof addr.sun_path - 1);
  const int rc = util::retry_eintr([&] {
    return ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof addr);
  });
  if (rc < 0 && errno != EINPROGRESS) {
    ::close(fd);
    return false;
  }
  if (rc < 0) {
    // Nonblocking connect in flight: wait for writability, then check.
    pollfd pfd{fd, POLLOUT, 0};
    const int ready = util::retry_eintr(
        [&] { return ::poll(&pfd, 1, config_.io_timeout_ms); });
    int err = 0;
    socklen_t len = sizeof err;
    if (ready <= 0 ||
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0 || err != 0) {
      ::close(fd);
      return false;
    }
  }
  fd_ = fd;
  ++stats_.reconnects;
  return true;
}

bool Client::send_all(std::string_view bytes) {
  std::size_t sent = 0;
  const double deadline = now_ms() + config_.io_timeout_ms;
  while (sent < bytes.size()) {
    const ssize_t n = util::retry_eintr([&] {
      return ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                    MSG_NOSIGNAL);
    });
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (now_ms() > deadline) return false;
      pollfd pfd{fd_, POLLOUT, 0};
      (void)util::retry_eintr([&] { return ::poll(&pfd, 1, 20); });
      continue;
    }
    return false;  // EPIPE / reset: the daemon dropped us
  }
  return true;
}

/// Read frames until one with the expected request id arrives (a verified
/// stray id is a protocol violation — drop the connection).  False on
/// timeout, EOF or framing error; the connection is dropped so no stale
/// response can bleed into the next attempt.
bool Client::read_frame(Frame& out, std::uint64_t expect_request_id) {
  FrameReader reader;
  const double deadline = now_ms() + config_.io_timeout_ms;
  char buf[65536];
  for (;;) {
    try {
      if (auto frame = reader.next()) {
        if (frame->request_id != expect_request_id) {
          disconnect();
          return false;
        }
        out = std::move(*frame);
        return true;
      }
    } catch (const ProtocolError&) {
      disconnect();
      return false;
    }
    const double left = deadline - now_ms();
    if (left <= 0.0) {
      disconnect();  // a late response must not reach the next attempt
      return false;
    }
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = util::retry_eintr([&] {
      return ::poll(&pfd, 1, std::max(1, static_cast<int>(left)));
    });
    if (ready <= 0) continue;
    const ssize_t n =
        util::retry_eintr([&] { return ::recv(fd_, buf, sizeof buf, 0); });
    if (n > 0) {
      try {
        reader.feed(std::string_view(buf, static_cast<std::size_t>(n)));
      } catch (const ProtocolError&) {
        disconnect();
        return false;
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) continue;
    disconnect();  // EOF or hard error
    return false;
  }
}

void Client::backoff(int attempt) {
  double ms = config_.backoff_initial_ms;
  for (int i = 0; i < attempt; ++i) ms *= config_.backoff_multiplier;
  ms = std::min(ms, static_cast<double>(config_.backoff_max_ms));
  stats_.backoff_total_ms += ms;
  sleep_ms(ms);
}

Frame Client::call(MessageType type, const std::string& payload) {
  // The id survives every retry of this call — the idempotency contract.
  const std::uint64_t id = next_request_id_++;
  const int req_index = request_index_++;
  const std::string frame = frame_message(type, id, payload);

  for (int attempt = 0; attempt < config_.max_attempts; ++attempt) {
    ++stats_.attempts;
    const double rtt_begin_ms = rtt_hist_ != nullptr ? now_ms() : 0.0;
    const ProtocolChaosAgent agent(config_.chaos, req_index, attempt);

    if (agent.kill_daemon_scheduled() && config_.kill_daemon) {
      // Harness-owned: SIGKILL + restart-from-snapshot, synchronously.
      config_.kill_daemon();
      ++stats_.daemon_kills_injected;
      disconnect();
    }
    if (!ensure_connected()) {
      ++stats_.io_failures;
      backoff(attempt);
      continue;
    }
    if (agent.drop_scheduled()) {
      disconnect();
      ++stats_.drops_injected;
      backoff(attempt);
      continue;
    }
    bool delivered = false;
    if (agent.truncate_scheduled()) {
      // Mid-frame tear: the daemon buffers a prefix, we vanish.
      const std::size_t cut = agent.cut_point(frame.size());
      (void)send_all(std::string_view(frame).substr(0, cut));
      disconnect();
      ++stats_.truncations_injected;
      backoff(attempt);
      continue;
    }
    if (agent.stall_scheduled()) {
      // Slow-loris: half a frame, then silence past the daemon's
      // deadline.  If the daemon evicts us the tail send/read fails and
      // we retry; if its deadline is long enough, the call just succeeds.
      const std::size_t cut = agent.cut_point(frame.size());
      ++stats_.stalls_injected;
      delivered = send_all(std::string_view(frame).substr(0, cut));
      sleep_ms(agent.stall_ms());
      delivered =
          delivered && send_all(std::string_view(frame).substr(cut));
    } else {
      delivered = send_all(frame);
    }
    if (!delivered) {
      disconnect();
      ++stats_.io_failures;
      backoff(attempt);
      continue;
    }

    Frame response;
    if (!read_frame(response, id)) {
      ++stats_.io_failures;
      backoff(attempt);
      continue;
    }
    if (response.type == MessageType::kErrorResponse) {
      try {
        const ErrorResponse err = ErrorResponse::parse(response.payload);
        if (retryable_status(err.status)) {
          ++stats_.overloaded_retries;
          backoff(attempt);
          continue;
        }
      } catch (const ProtocolError&) {
        disconnect();
        ++stats_.io_failures;
        backoff(attempt);
        continue;
      }
    }

    // Completed: canonical request/response bytes enter the transcript.
    if (rtt_hist_ != nullptr) {
      rtt_hist_->observe((now_ms() - rtt_begin_ms) * 1e-3);
    }
    transcript_ += frame;
    transcript_ += frame_message(response.type, response.request_id,
                                 response.payload);
    ++stats_.calls;
    return response;
  }
  throw std::runtime_error(strformat(
      "fleet client: %s (request id %llu) failed after %d attempts",
      to_string(type), static_cast<unsigned long long>(id),
      config_.max_attempts));
}

namespace {

/// Unwrap a typed response or throw on a terminal error answer.
template <class Response>
Response unwrap(const Frame& frame, MessageType want) {
  if (frame.type == MessageType::kErrorResponse) {
    const ErrorResponse err = ErrorResponse::parse(frame.payload);
    throw std::runtime_error(std::string("fleet client: daemon error (") +
                             to_string(err.status) + "): " + err.message);
  }
  if (frame.type != want) {
    throw std::runtime_error(std::string("fleet client: expected ") +
                             to_string(want) + ", got " +
                             to_string(frame.type));
  }
  return Response::parse(frame.payload);
}

}  // namespace

bool Client::ping() {
  const Frame resp = call(MessageType::kPingRequest,
                          PingRequest{}.encode());
  return resp.type == MessageType::kPingResponse;
}

MarginResponse Client::margin(const MarginRequest& request) {
  return unwrap<MarginResponse>(
      call(MessageType::kMarginRequest, request.encode()),
      MessageType::kMarginResponse);
}

MarginBatchResponse Client::margin_batch(const MarginBatchRequest& request) {
  return unwrap<MarginBatchResponse>(
      call(MessageType::kMarginBatchRequest, request.encode()),
      MessageType::kMarginBatchResponse);
}

RejuvenationResponse Client::rejuvenation(const RejuvenationRequest& request) {
  return unwrap<RejuvenationResponse>(
      call(MessageType::kRejuvenationRequest, request.encode()),
      MessageType::kRejuvenationResponse);
}

ScheduleSleepResponse Client::schedule_sleep(ScheduleSleepRequest request) {
  request.client_id = config_.client_id;
  return unwrap<ScheduleSleepResponse>(
      call(MessageType::kScheduleSleepRequest, request.encode()),
      MessageType::kScheduleSleepResponse);
}

StatusResponse Client::status() {
  return unwrap<StatusResponse>(
      call(MessageType::kStatusRequest, StatusRequest{}.encode()),
      MessageType::kStatusResponse);
}

Frame Client::scrape(MessageType type, const std::string& payload) {
  // Volatile channel: same retry/backoff posture as call(), but no chaos
  // agent, no request_index_ consumed (chaos streams stay aligned
  // call-for-call), nothing appended to the transcript, and an id from
  // the tagged scrape space so transcripted ids never shift.
  const std::uint64_t id = next_scrape_id_++;
  const std::string frame = frame_message(type, id, payload);
  for (int attempt = 0; attempt < config_.max_attempts; ++attempt) {
    ++stats_.attempts;
    const double rtt_begin_ms = rtt_hist_ != nullptr ? now_ms() : 0.0;
    if (!ensure_connected()) {
      ++stats_.io_failures;
      backoff(attempt);
      continue;
    }
    if (!send_all(frame)) {
      disconnect();
      ++stats_.io_failures;
      backoff(attempt);
      continue;
    }
    Frame response;
    if (!read_frame(response, id)) {
      ++stats_.io_failures;
      backoff(attempt);
      continue;
    }
    if (response.type == MessageType::kErrorResponse) {
      try {
        const ErrorResponse err = ErrorResponse::parse(response.payload);
        if (retryable_status(err.status)) {
          ++stats_.overloaded_retries;
          backoff(attempt);
          continue;
        }
      } catch (const ProtocolError&) {
        disconnect();
        ++stats_.io_failures;
        backoff(attempt);
        continue;
      }
    }
    if (rtt_hist_ != nullptr) {
      rtt_hist_->observe((now_ms() - rtt_begin_ms) * 1e-3);
    }
    return response;
  }
  throw std::runtime_error(strformat(
      "fleet client: scrape %s (request id %llu) failed after %d attempts",
      to_string(type), static_cast<unsigned long long>(id),
      config_.max_attempts));
}

MetricsResponse Client::metrics(const std::string& prefix) {
  MetricsRequest request;
  request.prefix = prefix;
  return unwrap<MetricsResponse>(
      scrape(MessageType::kMetricsRequest, request.encode()),
      MessageType::kMetricsResponse);
}

ProfileResponse Client::profile() {
  return unwrap<ProfileResponse>(
      scrape(MessageType::kProfileRequest, ProfileRequest{}.encode()),
      MessageType::kProfileResponse);
}

HealthResponse Client::health() {
  return unwrap<HealthResponse>(
      scrape(MessageType::kHealthRequest, HealthRequest{}.encode()),
      MessageType::kHealthResponse);
}

std::vector<Frame> Client::burst(MessageType type,
                                 const std::vector<std::string>& payloads) {
  if (payloads.empty()) return {};
  if (!ensure_connected()) {
    throw std::runtime_error("fleet client: burst: cannot connect");
  }
  std::string wire;
  std::vector<std::uint64_t> ids;
  ids.reserve(payloads.size());
  for (const std::string& payload : payloads) {
    const std::uint64_t id = next_request_id_++;
    ids.push_back(id);
    wire += frame_message(type, id, payload);
  }
  ++request_index_;  // keep chaos streams aligned call-for-call
  if (!send_all(wire)) {
    disconnect();
    throw std::runtime_error("fleet client: burst: send failed");
  }
  // One shared reader: responses come back in request order on the one
  // connection, shed ones as kErrorResponse frames.
  std::vector<Frame> responses;
  responses.reserve(ids.size());
  FrameReader reader;
  const double deadline = now_ms() + config_.io_timeout_ms;
  char buf[65536];
  while (responses.size() < ids.size()) {
    bool progressed = false;
    try {
      while (auto frame = reader.next()) {
        if (frame->request_id != ids[responses.size()]) {
          disconnect();
          throw std::runtime_error("fleet client: burst: response id skew");
        }
        responses.push_back(std::move(*frame));
        progressed = true;
        if (responses.size() == ids.size()) break;
      }
    } catch (const ProtocolError& e) {
      disconnect();
      throw std::runtime_error(std::string("fleet client: burst: ") +
                               e.what());
    }
    if (responses.size() == ids.size()) break;
    if (progressed) continue;
    if (now_ms() > deadline) {
      disconnect();
      throw std::runtime_error("fleet client: burst: response timeout");
    }
    pollfd pfd{fd_, POLLIN, 0};
    (void)util::retry_eintr([&] { return ::poll(&pfd, 1, 20); });
    const ssize_t n =
        util::retry_eintr([&] { return ::recv(fd_, buf, sizeof buf, 0); });
    if (n > 0) {
      try {
        reader.feed(std::string_view(buf, static_cast<std::size_t>(n)));
      } catch (const ProtocolError& e) {
        disconnect();
        throw std::runtime_error(std::string("fleet client: burst: ") +
                                 e.what());
      }
    } else if (n == 0 || (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK)) {
      disconnect();
      throw std::runtime_error("fleet client: burst: connection lost");
    }
  }
  return responses;
}

}  // namespace ash::fleet
