#include "ash/fleet/checkpoint_store.h"

#include <dirent.h>
#include <unistd.h>

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <map>
#include <system_error>

#include "ash/util/atomic_file.h"
#include "ash/util/crc32.h"

namespace ash::fleet {

namespace {

constexpr char kMagic[8] = {'A', 'S', 'H', 'F', 'L', 'T', '1', '\n'};
constexpr std::size_t kHeaderSize = 40;

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

std::uint32_t get_u32(std::string_view bytes, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(bytes[at + static_cast<std::size_t>(i)]);
  }
  return v;
}

std::uint64_t get_u64(std::string_view bytes, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(bytes[at + static_cast<std::size_t>(i)]);
  }
  return v;
}

}  // namespace

std::string frame_snapshot(int shard_id, std::uint64_t sequence,
                           std::string_view payload) {
  std::string out;
  out.reserve(kHeaderSize + payload.size());
  out.append(kMagic, sizeof kMagic);
  put_u32(out, kSnapshotVersion);
  put_u32(out, static_cast<std::uint32_t>(shard_id));
  put_u64(out, sequence);
  put_u64(out, payload.size());
  put_u32(out, util::crc32(payload));
  put_u32(out, util::crc32(out));  // header self-check over bytes 0..35
  out.append(payload);
  return out;
}

DecodedSnapshot decode_snapshot(std::string_view bytes) {
  if (bytes.size() < kHeaderSize) {
    throw CorruptSnapshot("snapshot truncated: " +
                          std::to_string(bytes.size()) +
                          " bytes, header needs " +
                          std::to_string(kHeaderSize));
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof kMagic) != 0) {
    throw CorruptSnapshot("bad magic: not an ash-fleet snapshot");
  }
  const std::uint32_t version = get_u32(bytes, 8);
  if (version != kSnapshotVersion) {
    throw CorruptSnapshot("unsupported snapshot version " +
                          std::to_string(version));
  }
  const std::uint32_t header_crc = get_u32(bytes, 36);
  if (util::crc32(bytes.substr(0, 36)) != header_crc) {
    throw CorruptSnapshot("header CRC mismatch (header tampered or torn)");
  }
  const std::uint64_t payload_size = get_u64(bytes, 24);
  if (bytes.size() - kHeaderSize != payload_size) {
    throw CorruptSnapshot(
        "payload length mismatch: header says " +
        std::to_string(payload_size) + " bytes, file carries " +
        std::to_string(bytes.size() - kHeaderSize) +
        (bytes.size() - kHeaderSize < payload_size ? " (torn write)"
                                                   : " (trailing garbage)"));
  }
  const std::uint32_t payload_crc = get_u32(bytes, 32);
  if (util::crc32(bytes.substr(kHeaderSize)) != payload_crc) {
    throw CorruptSnapshot("payload CRC mismatch (bit rot or tampering)");
  }
  DecodedSnapshot out;
  out.shard_id = static_cast<int>(get_u32(bytes, 12));
  out.sequence = get_u64(bytes, 16);
  out.payload = std::string(bytes.substr(kHeaderSize));
  return out;
}

CheckpointStore::CheckpointStore(std::string directory)
    : directory_(std::move(directory)) {
  if (!util::writable_directory(directory_)) {
    throw std::runtime_error("checkpoint store: '" + directory_ +
                             "' is not a writable directory");
  }
}

std::string CheckpointStore::file_name(int shard_id, std::uint64_t sequence) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "shard-%05d.seq-%010" PRIu64 ".ckpt",
                shard_id, sequence);
  return buf;
}

std::string CheckpointStore::save(int shard_id, std::uint64_t sequence,
                                  std::string_view payload) const {
  const std::string path = directory_ + "/" + file_name(shard_id, sequence);
  util::atomic_write_file(path, frame_snapshot(shard_id, sequence, payload));
  return path;
}

std::vector<std::string> CheckpointStore::shard_files(int shard_id) const {
  // Collect by *parsed* sequence so ordering never depends on readdir
  // order; the zero-padded names sort the same way, but parsing is the
  // contract.
  std::map<std::uint64_t, std::string> by_seq;
  DIR* d = ::opendir(directory_.c_str());
  if (d == nullptr) {
    throw std::runtime_error("checkpoint store: cannot list '" + directory_ +
                             "'");
  }
  char want_prefix[32];
  std::snprintf(want_prefix, sizeof want_prefix, "shard-%05d.seq-", shard_id);
  while (dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name.rfind(want_prefix, 0) != 0) continue;
    if (name.size() < 5 || name.substr(name.size() - 5) != ".ckpt") continue;
    const std::string digits =
        name.substr(std::strlen(want_prefix),
                    name.size() - std::strlen(want_prefix) - 5);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    by_seq[std::strtoull(digits.c_str(), nullptr, 10)] =
        directory_ + "/" + name;
  }
  ::closedir(d);
  std::vector<std::string> out;
  out.reserve(by_seq.size());
  for (const auto& [seq, path] : by_seq) out.push_back(path);
  return out;
}

std::optional<LoadedSnapshot> CheckpointStore::load_newest_valid(
    int shard_id) const {
  const std::vector<std::string> files = shard_files(shard_id);
  LoadedSnapshot out;
  for (auto it = files.rbegin(); it != files.rend(); ++it) {
    std::string bytes;
    try {
      bytes = util::read_file(*it);
    } catch (const std::system_error&) {
      out.corrupt_skipped++;  // unreadable counts as invalid
      continue;
    }
    try {
      DecodedSnapshot snap = decode_snapshot(bytes);
      if (snap.shard_id != shard_id) {
        out.corrupt_skipped++;  // frame verifies but names another shard
        continue;
      }
      out.sequence = snap.sequence;
      out.payload = std::move(snap.payload);
      return out;
    } catch (const CorruptSnapshot&) {
      out.corrupt_skipped++;
    }
  }
  return std::nullopt;
}

void CheckpointStore::prune(int shard_id, std::size_t keep) const {
  const std::vector<std::string> files = shard_files(shard_id);
  if (files.size() <= keep) return;
  for (std::size_t i = 0; i + keep < files.size(); ++i) {
    ::unlink(files[i].c_str());
  }
}

}  // namespace ash::fleet
