#include "ash/fleet/protocol.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <initializer_list>
#include <map>

#include "ash/obs/metrics.h"
#include "ash/util/crc32.h"
#include "ash/util/table.h"

namespace ash::fleet {

namespace {

constexpr char kMagic[8] = {'A', 'S', 'H', 'F', 'L', 'T', 'Q', '1'};

/// The single choke point for framing rejections: count the violation into
/// the process-global tallies, then throw.  Payload *document* errors
/// bypass this (they construct ProtocolError directly with kNone), so the
/// tallies count framing violations and nothing else.
[[noreturn]] void reject(ProtocolViolation violation, const std::string& what) {
  protocol_tallies().count(violation);
  throw ProtocolError(what, violation);
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

std::uint32_t get_u32(std::string_view bytes, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) |
        static_cast<unsigned char>(bytes[at + static_cast<std::size_t>(i)]);
  }
  return v;
}

std::uint64_t get_u64(std::string_view bytes, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) |
        static_cast<unsigned char>(bytes[at + static_cast<std::size_t>(i)]);
  }
  return v;
}

/// Earliest-offset validation of a (possibly partial) frame prefix.
/// Returns the total frame size once the header is complete and valid, 0
/// when more bytes are needed.  Throws ProtocolError at the first byte
/// that proves the input is not a frame.
std::uint64_t check_frame_prefix(std::string_view bytes,
                                 std::uint64_t max_payload) {
  const std::size_t magic_len = std::min(bytes.size(), sizeof kMagic);
  if (std::memcmp(bytes.data(), kMagic, magic_len) != 0) {
    reject(ProtocolViolation::kBadMagic, "bad magic: not an ash-fleet frame");
  }
  if (bytes.size() < 12) return 0;
  const std::uint32_t version = get_u32(bytes, 8);
  if (version != kProtocolVersion) {
    reject(ProtocolViolation::kBadVersion,
           "unsupported protocol version " + std::to_string(version));
  }
  if (bytes.size() < 32) return 0;
  const std::uint64_t payload_size = get_u64(bytes, 24);
  if (payload_size > max_payload) {
    reject(ProtocolViolation::kHostileLength,
           "declared payload of " + std::to_string(payload_size) +
               " bytes exceeds the " + std::to_string(max_payload) +
               "-byte cap (hostile length)");
  }
  if (bytes.size() < kFrameHeaderSize) return 0;
  const std::uint32_t header_crc = get_u32(bytes, 36);
  if (util::crc32(bytes.substr(0, 36)) != header_crc) {
    reject(ProtocolViolation::kHeaderCrc,
           "header CRC mismatch (tampered or torn header)");
  }
  return kFrameHeaderSize + payload_size;
}

/// Unwrap a frame whose header has already passed check_frame_prefix and
/// whose `total` bytes are all present.
Frame finish_frame(std::string_view bytes) {
  const std::uint32_t payload_crc = get_u32(bytes, 32);
  if (util::crc32(bytes.substr(kFrameHeaderSize)) != payload_crc) {
    reject(ProtocolViolation::kPayloadCrc,
           "payload CRC mismatch (bit rot or tampering)");
  }
  const std::uint32_t raw_type = get_u32(bytes, 12);
  if (!known_message_type(raw_type)) {
    reject(ProtocolViolation::kUnknownType,
           "unknown message type " + std::to_string(raw_type));
  }
  Frame frame;
  frame.type = static_cast<MessageType>(raw_type);
  frame.request_id = get_u64(bytes, 16);
  frame.payload = std::string(bytes.substr(kFrameHeaderSize));
  protocol_tallies().count_decoded();
  return frame;
}

// -------------------------------------------------------------------------
// Text-document payload helpers.
// -------------------------------------------------------------------------

/// %.17g: the shortest printf format that round-trips every finite double
/// bit-exactly — transcript comparisons are byte comparisons because of it.
std::string fmt_double(double v) { return strformat("%.17g", v); }

void put_field(std::string& out, const char* key, const std::string& value) {
  out += key;
  out += ' ';
  out += value;
  out += '\n';
}

/// Strict `key value` document: every key required exactly once, no
/// unknown keys, every number finite.  Hostile payloads with a valid CRC
/// (an attacker can compute CRCs) die here, field by field.
class Doc {
 public:
  Doc(std::string_view payload, std::initializer_list<const char*> schema) {
    std::size_t pos = 0;
    while (pos < payload.size()) {
      std::size_t eol = payload.find('\n', pos);
      if (eol == std::string_view::npos) {
        throw ProtocolError("payload line without newline terminator");
      }
      const std::string_view line = payload.substr(pos, eol - pos);
      pos = eol + 1;
      const std::size_t space = line.find(' ');
      if (space == std::string_view::npos || space == 0) {
        throw ProtocolError("malformed payload line '" + std::string(line) +
                            "'");
      }
      const std::string key(line.substr(0, space));
      bool known = false;
      for (const char* want : schema) known = known || key == want;
      if (!known) throw ProtocolError("unknown field '" + key + "'");
      if (!fields_.emplace(key, std::string(line.substr(space + 1))).second) {
        throw ProtocolError("duplicate field '" + key + "'");
      }
    }
    for (const char* want : schema) {
      if (fields_.find(want) == fields_.end()) {
        throw ProtocolError("missing field '" + std::string(want) + "'");
      }
    }
  }

  const std::string& raw(const char* key) const { return fields_.at(key); }

  std::uint64_t get_u64(const char* key) const {
    const std::string& v = raw(key);
    if (v.empty() || v.find_first_not_of("0123456789") != std::string::npos) {
      throw ProtocolError("field '" + std::string(key) +
                          "' is not an unsigned integer: '" + v + "'");
    }
    errno = 0;
    const std::uint64_t out = std::strtoull(v.c_str(), nullptr, 10);
    if (errno == ERANGE) {
      throw ProtocolError("field '" + std::string(key) + "' overflows: '" +
                          v + "'");
    }
    return out;
  }

  double get_double(const char* key) const {
    const std::string& v = raw(key);
    char* end = nullptr;
    const double out = std::strtod(v.c_str(), &end);
    if (v.empty() || end != v.c_str() + v.size() || !std::isfinite(out)) {
      throw ProtocolError("field '" + std::string(key) +
                          "' is not a finite number: '" + v + "'");
    }
    return out;
  }

  double get_double_in(const char* key, double lo, double hi) const {
    const double out = get_double(key);
    if (out < lo || out > hi) {
      throw ProtocolError("field '" + std::string(key) + "' = " +
                          fmt_double(out) + " outside [" + fmt_double(lo) +
                          ", " + fmt_double(hi) + "]");
    }
    return out;
  }

  bool get_bool(const char* key) const {
    const std::string& v = raw(key);
    if (v == "0") return false;
    if (v == "1") return true;
    throw ProtocolError("field '" + std::string(key) + "' is not 0/1: '" + v +
                        "'");
  }

  int get_int(const char* key, int lo, int hi) const {
    const double v = get_double_in(key, lo, hi);
    if (v != std::floor(v)) {
      throw ProtocolError("field '" + std::string(key) +
                          "' is not an integer: '" + raw(key) + "'");
    }
    return static_cast<int>(v);
  }

 private:
  std::map<std::string, std::string> fields_;
};

Status parse_status_value(std::string_view v) {
  if (v == "ok") return Status::kOk;
  if (v == "overloaded") return Status::kOverloaded;
  if (v == "bad-request") return Status::kBadRequest;
  if (v == "unknown-device") return Status::kUnknownDevice;
  if (v == "shutting-down") return Status::kShuttingDown;
  throw ProtocolError("unknown status '" + std::string(v) + "'");
}

Status parse_status(const Doc& doc) { return parse_status_value(doc.raw("status")); }

// --- Scrape-channel codec helpers ----------------------------------------
// Metrics/profile responses carry grammars the strict Doc cannot express
// (raw `key=value` text blocks, repeated `kernel` lines), so they parse
// through an explicit line cursor with the same fail-on-anything-odd
// posture.

class LineCursor {
 public:
  explicit LineCursor(std::string_view payload) : payload_(payload) {}

  std::string_view next_line() {
    if (pos_ >= payload_.size()) {
      throw ProtocolError("payload ended before a required line");
    }
    const std::size_t eol = payload_.find('\n', pos_);
    if (eol == std::string_view::npos) {
      throw ProtocolError("payload line without newline terminator");
    }
    const std::string_view line = payload_.substr(pos_, eol - pos_);
    pos_ = eol + 1;
    return line;
  }

  /// Consume exactly `n` raw bytes (the length-prefixed text block).
  std::string_view take(std::uint64_t n) {
    if (payload_.size() - pos_ < n) {
      throw ProtocolError("length-prefixed block truncated");
    }
    const std::string_view out = payload_.substr(pos_, n);
    pos_ += n;
    return out;
  }

  void expect_done() const {
    if (pos_ != payload_.size()) {
      throw ProtocolError("trailing bytes after the payload document");
    }
  }

 private:
  std::string_view payload_;
  std::size_t pos_ = 0;
};

/// `<key> <value>` line → value, throwing when the key is wrong.
std::string_view expect_key(std::string_view line, const char* key) {
  const std::size_t key_len = std::strlen(key);
  if (line.size() < key_len + 1 || line.substr(0, key_len) != key ||
      line[key_len] != ' ') {
    throw ProtocolError("expected '" + std::string(key) + "' line, got '" +
                        std::string(line) + "'");
  }
  return line.substr(key_len + 1);
}

std::uint64_t parse_u64_value(std::string_view v, const char* key) {
  if (v.empty() ||
      v.find_first_not_of("0123456789") != std::string_view::npos) {
    throw ProtocolError("field '" + std::string(key) +
                        "' is not an unsigned integer: '" + std::string(v) +
                        "'");
  }
  errno = 0;
  const std::uint64_t out = std::strtoull(std::string(v).c_str(), nullptr, 10);
  if (errno == ERANGE) {
    throw ProtocolError("field '" + std::string(key) + "' overflows: '" +
                        std::string(v) + "'");
  }
  return out;
}

/// A non-negative duration field (hostile negative horizons rejected).
Seconds get_seconds(const Doc& doc, const char* key) {
  return Seconds{doc.get_double_in(key, 0.0, 1e18)};
}

/// A finite double row token (the Doc::get_double discipline, outside the
/// strict key/value grammar).
double parse_double_value(std::string_view v, const char* key) {
  const std::string text(v);
  char* end = nullptr;
  const double out = std::strtod(text.c_str(), &end);
  if (text.empty() || end != text.c_str() + text.size() ||
      !std::isfinite(out)) {
    throw ProtocolError("field '" + std::string(key) +
                        "' is not a finite number: '" + text + "'");
  }
  return out;
}

}  // namespace

const char* to_string(MessageType type) {
  switch (type) {
    case MessageType::kPingRequest: return "ping-request";
    case MessageType::kPingResponse: return "ping-response";
    case MessageType::kMarginRequest: return "margin-request";
    case MessageType::kMarginResponse: return "margin-response";
    case MessageType::kRejuvenationRequest: return "rejuvenation-request";
    case MessageType::kRejuvenationResponse: return "rejuvenation-response";
    case MessageType::kScheduleSleepRequest: return "schedule-sleep-request";
    case MessageType::kScheduleSleepResponse: return "schedule-sleep-response";
    case MessageType::kStatusRequest: return "status-request";
    case MessageType::kStatusResponse: return "status-response";
    case MessageType::kErrorResponse: return "error-response";
    case MessageType::kMetricsRequest: return "metrics-request";
    case MessageType::kMetricsResponse: return "metrics-response";
    case MessageType::kProfileRequest: return "profile-request";
    case MessageType::kProfileResponse: return "profile-response";
    case MessageType::kHealthRequest: return "health-request";
    case MessageType::kHealthResponse: return "health-response";
    case MessageType::kMarginBatchRequest: return "margin-batch-request";
    case MessageType::kMarginBatchResponse: return "margin-batch-response";
  }
  return "unknown";
}

bool known_message_type(std::uint32_t raw) {
  // 12 is deliberately unassigned (the odd/even request/response pairing
  // skips over kErrorResponse = 11).
  return (raw >= static_cast<std::uint32_t>(MessageType::kPingRequest) &&
          raw <= static_cast<std::uint32_t>(MessageType::kErrorResponse)) ||
         (raw >= static_cast<std::uint32_t>(MessageType::kMetricsRequest) &&
          raw <= static_cast<std::uint32_t>(MessageType::kMarginBatchResponse));
}

bool volatile_message_type(MessageType type) {
  // The scrape channel is the explicit 13..18 block, not "13 and up":
  // types past it (the margin batch) are deterministic science queries
  // again and must stay inside the transcript-identity machinery.
  const auto raw = static_cast<std::uint32_t>(type);
  return raw >= static_cast<std::uint32_t>(MessageType::kMetricsRequest) &&
         raw <= static_cast<std::uint32_t>(MessageType::kHealthResponse);
}

const char* to_string(ProtocolViolation violation) {
  switch (violation) {
    case ProtocolViolation::kNone: return "none";
    case ProtocolViolation::kBadMagic: return "bad-magic";
    case ProtocolViolation::kBadVersion: return "bad-version";
    case ProtocolViolation::kHostileLength: return "hostile-length";
    case ProtocolViolation::kHeaderCrc: return "header-crc";
    case ProtocolViolation::kPayloadCrc: return "payload-crc";
    case ProtocolViolation::kUnknownType: return "unknown-type";
    case ProtocolViolation::kTruncated: return "truncated";
    case ProtocolViolation::kTrailingGarbage: return "trailing-garbage";
    case ProtocolViolation::kCount: break;
  }
  return "unknown";
}

namespace {

/// Metric-name suffix for a violation class ([a-z0-9_.]+ discipline).
const char* metric_suffix(ProtocolViolation violation) {
  switch (violation) {
    case ProtocolViolation::kBadMagic: return "bad_magic";
    case ProtocolViolation::kBadVersion: return "bad_version";
    case ProtocolViolation::kHostileLength: return "hostile_length";
    case ProtocolViolation::kHeaderCrc: return "header_crc";
    case ProtocolViolation::kPayloadCrc: return "payload_crc";
    case ProtocolViolation::kUnknownType: return "unknown_type";
    case ProtocolViolation::kTruncated: return "truncated";
    case ProtocolViolation::kTrailingGarbage: return "trailing_garbage";
    case ProtocolViolation::kNone:
    case ProtocolViolation::kCount: break;
  }
  return "unknown";
}

}  // namespace

void ProtocolTallies::count(ProtocolViolation violation) {
  rejected_[static_cast<std::size_t>(violation)].fetch_add(
      1, std::memory_order_relaxed);
}

std::uint64_t ProtocolTallies::rejected(ProtocolViolation violation) const {
  return rejected_[static_cast<std::size_t>(violation)].load(
      std::memory_order_relaxed);
}

std::uint64_t ProtocolTallies::rejected_total() const {
  std::uint64_t total = 0;
  for (std::size_t i = 1; i < rejected_.size(); ++i) {
    total += rejected_[i].load(std::memory_order_relaxed);
  }
  return total;
}

void ProtocolTallies::publish(obs::Registry& registry,
                              std::string_view prefix) const {
  const std::string p(prefix);
  registry.counter(p + "frames_decoded").set(decoded());
  for (std::size_t i = 1;
       i < static_cast<std::size_t>(ProtocolViolation::kCount); ++i) {
    const auto violation = static_cast<ProtocolViolation>(i);
    registry.counter(p + "rejected." + metric_suffix(violation))
        .set(rejected(violation));
  }
  registry.counter(p + "rejected.total").set(rejected_total());
}

void ProtocolTallies::reset() {
  decoded_.store(0, std::memory_order_relaxed);
  for (auto& r : rejected_) r.store(0, std::memory_order_relaxed);
}

ProtocolTallies& protocol_tallies() {
  static ProtocolTallies tallies;
  return tallies;
}

const char* to_string(Status status) {
  switch (status) {
    case Status::kOk: return "ok";
    case Status::kOverloaded: return "overloaded";
    case Status::kBadRequest: return "bad-request";
    case Status::kUnknownDevice: return "unknown-device";
    case Status::kShuttingDown: return "shutting-down";
  }
  return "unknown";
}

std::string frame_message(MessageType type, std::uint64_t request_id,
                          std::string_view payload) {
  if (payload.size() > kMaxFramePayload) {
    throw ProtocolError("refusing to frame a " +
                        std::to_string(payload.size()) + "-byte payload");
  }
  std::string out;
  out.reserve(kFrameHeaderSize + payload.size());
  out.append(kMagic, sizeof kMagic);
  put_u32(out, kProtocolVersion);
  put_u32(out, static_cast<std::uint32_t>(type));
  put_u64(out, request_id);
  put_u64(out, payload.size());
  put_u32(out, util::crc32(payload));
  put_u32(out, util::crc32(out));  // header self-check over bytes 0..35
  out.append(payload);
  return out;
}

Frame decode_frame(std::string_view bytes, std::uint64_t max_payload) {
  const std::uint64_t total = check_frame_prefix(bytes, max_payload);
  if (total == 0) {
    reject(ProtocolViolation::kTruncated,
           "frame truncated: " + std::to_string(bytes.size()) +
               " bytes, header needs " + std::to_string(kFrameHeaderSize));
  }
  if (bytes.size() < total) {
    reject(ProtocolViolation::kTruncated,
           "frame truncated: header declares " + std::to_string(total) +
               " bytes, got " + std::to_string(bytes.size()) +
               " (torn write)");
  }
  if (bytes.size() > total) {
    reject(ProtocolViolation::kTrailingGarbage,
           "trailing garbage: " + std::to_string(bytes.size() - total) +
               " bytes beyond the declared frame");
  }
  return finish_frame(bytes);
}

FrameReader::FrameReader(std::uint64_t max_payload)
    : max_payload_(max_payload) {}

void FrameReader::check_prefix() {
  // Throws at the earliest offset that proves the buffer invalid; a valid
  // prefix (complete or not) passes silently.
  (void)check_frame_prefix(buffer_, max_payload_);
}

void FrameReader::feed(std::string_view bytes) {
  if (poisoned_) {
    throw ProtocolError("frame reader poisoned by an earlier violation");
  }
  buffer_.append(bytes);
  try {
    check_prefix();
  } catch (const ProtocolError&) {
    poisoned_ = true;
    throw;
  }
}

std::optional<Frame> FrameReader::next() {
  if (poisoned_) {
    throw ProtocolError("frame reader poisoned by an earlier violation");
  }
  try {
    const std::uint64_t total = check_frame_prefix(buffer_, max_payload_);
    if (total == 0 || buffer_.size() < total) return std::nullopt;
    Frame frame = finish_frame(std::string_view(buffer_).substr(0, total));
    buffer_.erase(0, total);
    return frame;
  } catch (const ProtocolError&) {
    poisoned_ = true;
    throw;
  }
}

// -------------------------------------------------------------------------
// Payload codecs.
// -------------------------------------------------------------------------

std::string PingRequest::encode() const { return {}; }

PingRequest PingRequest::parse(std::string_view payload) {
  (void)Doc(payload, {});
  return {};
}

std::string PingResponse::encode() const { return {}; }

PingResponse PingResponse::parse(std::string_view payload) {
  (void)Doc(payload, {});
  return {};
}

std::string MarginRequest::encode() const {
  std::string out;
  put_field(out, "device", std::to_string(device_id));
  put_field(out, "duty", fmt_double(duty));
  put_field(out, "vdd_v", fmt_double(vdd.value()));
  put_field(out, "temp_c", fmt_double(temp.value()));
  put_field(out, "horizon_s", fmt_double(horizon.value()));
  return out;
}

MarginRequest MarginRequest::parse(std::string_view payload) {
  const Doc doc(payload, {"device", "duty", "vdd_v", "temp_c", "horizon_s"});
  MarginRequest out;
  out.device_id = doc.get_u64("device");
  out.duty = doc.get_double_in("duty", 0.0, 1.0);
  out.vdd = Volts{doc.get_double_in("vdd_v", -5.0, 5.0)};
  out.temp = Celsius{doc.get_double_in("temp_c", -273.15, 300.0)};
  out.horizon = get_seconds(doc, "horizon_s");
  return out;
}

std::string MarginResponse::encode() const {
  std::string out;
  put_field(out, "status", to_string(status));
  put_field(out, "crosses", crosses ? "1" : "0");
  put_field(out, "time_to_margin_s", fmt_double(time_to_margin.value()));
  put_field(out, "delta_vth_v", fmt_double(delta_vth.value()));
  put_field(out, "margin_v", fmt_double(margin.value()));
  return out;
}

MarginResponse MarginResponse::parse(std::string_view payload) {
  const Doc doc(payload, {"status", "crosses", "time_to_margin_s",
                          "delta_vth_v", "margin_v"});
  MarginResponse out;
  out.status = parse_status(doc);
  out.crosses = doc.get_bool("crosses");
  out.time_to_margin = get_seconds(doc, "time_to_margin_s");
  out.delta_vth = Volts{doc.get_double("delta_vth_v")};
  out.margin = Volts{doc.get_double("margin_v")};
  return out;
}

std::string MarginBatchRequest::encode() const {
  std::string out;
  put_field(out, "duty", fmt_double(duty));
  put_field(out, "vdd_v", fmt_double(vdd.value()));
  put_field(out, "temp_c", fmt_double(temp.value()));
  put_field(out, "horizon_s", fmt_double(horizon.value()));
  put_field(out, "devices", std::to_string(device_ids.size()));
  for (std::uint64_t id : device_ids) {
    put_field(out, "device", std::to_string(id));
  }
  return out;
}

MarginBatchRequest MarginBatchRequest::parse(std::string_view payload) {
  // Repeated `device` rows put this payload outside the strict Doc
  // grammar; the line cursor applies the same fail-on-anything-odd
  // posture (ProfileResponse's codec shape).
  LineCursor cursor(payload);
  MarginBatchRequest out;
  const double duty =
      parse_double_value(expect_key(cursor.next_line(), "duty"), "duty");
  if (duty < 0.0 || duty > 1.0) {
    throw ProtocolError("field 'duty' = " + fmt_double(duty) +
                        " outside [0, 1]");
  }
  out.duty = duty;
  const double vdd =
      parse_double_value(expect_key(cursor.next_line(), "vdd_v"), "vdd_v");
  if (vdd < -5.0 || vdd > 5.0) {
    throw ProtocolError("field 'vdd_v' = " + fmt_double(vdd) +
                        " outside [-5, 5]");
  }
  out.vdd = Volts{vdd};
  const double temp =
      parse_double_value(expect_key(cursor.next_line(), "temp_c"), "temp_c");
  if (temp < -273.15 || temp > 300.0) {
    throw ProtocolError("field 'temp_c' = " + fmt_double(temp) +
                        " outside [-273.15, 300]");
  }
  out.temp = Celsius{temp};
  const double horizon = parse_double_value(
      expect_key(cursor.next_line(), "horizon_s"), "horizon_s");
  if (horizon < 0.0 || horizon > 1e18) {
    throw ProtocolError("field 'horizon_s' = " + fmt_double(horizon) +
                        " outside [0, 1e18]");
  }
  out.horizon = Seconds{horizon};
  const std::uint64_t rows =
      parse_u64_value(expect_key(cursor.next_line(), "devices"), "devices");
  if (rows > kMaxMarginBatchDevices) {
    throw ProtocolError("hostile device row count " + std::to_string(rows));
  }
  out.device_ids.reserve(rows);
  for (std::uint64_t i = 0; i < rows; ++i) {
    out.device_ids.push_back(parse_u64_value(
        expect_key(cursor.next_line(), "device"), "device"));
  }
  cursor.expect_done();
  return out;
}

std::string MarginBatchResponse::encode() const {
  std::string out;
  put_field(out, "status", to_string(status));
  put_field(out, "margin_v", fmt_double(margin.value()));
  put_field(out, "rows", std::to_string(rows.size()));
  for (const MarginBatchRow& r : rows) {
    put_field(out, "row",
              std::to_string(r.device_id) + ' ' + (r.crosses ? "1" : "0") +
                  ' ' + fmt_double(r.time_to_margin.value()) + ' ' +
                  fmt_double(r.delta_vth.value()));
  }
  return out;
}

MarginBatchResponse MarginBatchResponse::parse(std::string_view payload) {
  LineCursor cursor(payload);
  MarginBatchResponse out;
  out.status = parse_status_value(expect_key(cursor.next_line(), "status"));
  out.margin = Volts{parse_double_value(
      expect_key(cursor.next_line(), "margin_v"), "margin_v")};
  const std::uint64_t rows =
      parse_u64_value(expect_key(cursor.next_line(), "rows"), "rows");
  if (rows > kMaxMarginBatchDevices) {
    throw ProtocolError("hostile margin row count " + std::to_string(rows));
  }
  out.rows.reserve(rows);
  for (std::uint64_t i = 0; i < rows; ++i) {
    std::string_view row = expect_key(cursor.next_line(), "row");
    const std::size_t s1 = row.find(' ');
    const std::size_t s2 =
        s1 == std::string_view::npos ? s1 : row.find(' ', s1 + 1);
    const std::size_t s3 =
        s2 == std::string_view::npos ? s2 : row.find(' ', s2 + 1);
    if (s1 == std::string_view::npos || s1 == 0 ||
        s2 == std::string_view::npos || s3 == std::string_view::npos) {
      throw ProtocolError("malformed margin row '" + std::string(row) + "'");
    }
    MarginBatchRow r;
    r.device_id = parse_u64_value(row.substr(0, s1), "device");
    const std::string_view crosses = row.substr(s1 + 1, s2 - s1 - 1);
    if (crosses != "0" && crosses != "1") {
      throw ProtocolError("field 'crosses' is not 0/1: '" +
                          std::string(crosses) + "'");
    }
    r.crosses = crosses == "1";
    const double ttm = parse_double_value(row.substr(s2 + 1, s3 - s2 - 1),
                                          "time_to_margin_s");
    if (ttm < 0.0 || ttm > 1e18) {
      throw ProtocolError("field 'time_to_margin_s' = " + fmt_double(ttm) +
                          " outside [0, 1e18]");
    }
    r.time_to_margin = Seconds{ttm};
    r.delta_vth =
        Volts{parse_double_value(row.substr(s3 + 1), "delta_vth_v")};
    out.rows.push_back(r);
  }
  cursor.expect_done();
  return out;
}

std::string RejuvenationRequest::encode() const {
  std::string out;
  put_field(out, "epoch_s", fmt_double(epoch.value()));
  return out;
}

RejuvenationRequest RejuvenationRequest::parse(std::string_view payload) {
  const Doc doc(payload, {"epoch_s"});
  RejuvenationRequest out;
  out.epoch = get_seconds(doc, "epoch_s");
  return out;
}

std::string RejuvenationResponse::encode() const {
  std::string out;
  put_field(out, "status", to_string(status));
  put_field(out, "any", any ? "1" : "0");
  put_field(out, "shard", std::to_string(shard_id));
  put_field(out, "degradation", fmt_double(degradation));
  return out;
}

RejuvenationResponse RejuvenationResponse::parse(std::string_view payload) {
  const Doc doc(payload, {"status", "any", "shard", "degradation"});
  RejuvenationResponse out;
  out.status = parse_status(doc);
  out.any = doc.get_bool("any");
  out.shard_id = doc.get_int("shard", -1, 1 << 20);
  out.degradation = doc.get_double("degradation");
  return out;
}

std::string ScheduleSleepRequest::encode() const {
  std::string out;
  put_field(out, "client", std::to_string(client_id));
  put_field(out, "device", std::to_string(device_id));
  put_field(out, "start_s", fmt_double(start.value()));
  put_field(out, "duration_s", fmt_double(duration.value()));
  return out;
}

ScheduleSleepRequest ScheduleSleepRequest::parse(std::string_view payload) {
  const Doc doc(payload, {"client", "device", "start_s", "duration_s"});
  ScheduleSleepRequest out;
  out.client_id = doc.get_u64("client");
  out.device_id = doc.get_u64("device");
  out.start = get_seconds(doc, "start_s");
  out.duration = get_seconds(doc, "duration_s");
  return out;
}

std::string ScheduleSleepResponse::encode() const {
  std::string out;
  put_field(out, "status", to_string(status));
  put_field(out, "newly_applied", newly_applied ? "1" : "0");
  put_field(out, "windows", std::to_string(windows));
  return out;
}

ScheduleSleepResponse ScheduleSleepResponse::parse(std::string_view payload) {
  const Doc doc(payload, {"status", "newly_applied", "windows"});
  ScheduleSleepResponse out;
  out.status = parse_status(doc);
  out.newly_applied = doc.get_bool("newly_applied");
  out.windows = doc.get_u64("windows");
  return out;
}

std::string StatusRequest::encode() const { return {}; }

StatusRequest StatusRequest::parse(std::string_view payload) {
  (void)Doc(payload, {});
  return {};
}

std::string StatusResponse::encode() const {
  std::string out;
  put_field(out, "status", to_string(status));
  put_field(out, "devices", std::to_string(devices));
  put_field(out, "windows", std::to_string(windows));
  put_field(out, "sequence", std::to_string(sequence));
  put_field(out, "draining", draining ? "1" : "0");
  return out;
}

StatusResponse StatusResponse::parse(std::string_view payload) {
  const Doc doc(payload,
                {"status", "devices", "windows", "sequence", "draining"});
  StatusResponse out;
  out.status = parse_status(doc);
  out.devices = doc.get_u64("devices");
  out.windows = doc.get_u64("windows");
  out.sequence = doc.get_u64("sequence");
  out.draining = doc.get_bool("draining");
  return out;
}

std::string ErrorResponse::encode() const {
  std::string out;
  put_field(out, "status", to_string(status));
  // The message may contain spaces; it is the whole rest of the line.
  put_field(out, "message", message.empty() ? "-" : message);
  return out;
}

ErrorResponse ErrorResponse::parse(std::string_view payload) {
  const Doc doc(payload, {"status", "message"});
  ErrorResponse out;
  out.status = parse_status(doc);
  out.message = doc.raw("message");
  return out;
}

// --- Volatile scrape channel ----------------------------------------------

std::string MetricsRequest::encode() const {
  std::string out;
  // Metric names never contain '-', so "-" safely encodes "no filter".
  put_field(out, "prefix", prefix.empty() ? "-" : prefix);
  return out;
}

MetricsRequest MetricsRequest::parse(std::string_view payload) {
  const Doc doc(payload, {"prefix"});
  MetricsRequest out;
  out.prefix = doc.raw("prefix");
  if (out.prefix == "-") out.prefix.clear();
  return out;
}

std::string MetricsResponse::encode() const {
  std::string out;
  put_field(out, "status", to_string(status));
  put_field(out, "bytes", std::to_string(text.size()));
  out += text;
  return out;
}

MetricsResponse MetricsResponse::parse(std::string_view payload) {
  LineCursor cursor(payload);
  MetricsResponse out;
  out.status = parse_status_value(expect_key(cursor.next_line(), "status"));
  const std::uint64_t bytes =
      parse_u64_value(expect_key(cursor.next_line(), "bytes"), "bytes");
  out.text = std::string(cursor.take(bytes));
  cursor.expect_done();
  return out;
}

std::string ProfileRequest::encode() const { return {}; }

ProfileRequest ProfileRequest::parse(std::string_view payload) {
  (void)Doc(payload, {});
  return {};
}

std::string ProfileResponse::encode() const {
  std::string out;
  put_field(out, "status", to_string(status));
  put_field(out, "profiling", profiling ? "1" : "0");
  put_field(out, "kernels", std::to_string(kernels.size()));
  for (const ProfileEntry& k : kernels) {
    // Kernel names are dotted identifiers without spaces, so the row
    // tokenizes unambiguously.
    put_field(out, "kernel",
              k.kernel + ' ' + std::to_string(k.calls) + ' ' +
                  std::to_string(k.total_ns));
  }
  return out;
}

ProfileResponse ProfileResponse::parse(std::string_view payload) {
  LineCursor cursor(payload);
  ProfileResponse out;
  out.status = parse_status_value(expect_key(cursor.next_line(), "status"));
  const std::string_view profiling =
      expect_key(cursor.next_line(), "profiling");
  if (profiling != "0" && profiling != "1") {
    throw ProtocolError("field 'profiling' is not 0/1: '" +
                        std::string(profiling) + "'");
  }
  out.profiling = profiling == "1";
  const std::uint64_t rows =
      parse_u64_value(expect_key(cursor.next_line(), "kernels"), "kernels");
  if (rows > 4096) {
    throw ProtocolError("hostile kernel row count " + std::to_string(rows));
  }
  out.kernels.reserve(rows);
  for (std::uint64_t i = 0; i < rows; ++i) {
    std::string_view row = expect_key(cursor.next_line(), "kernel");
    ProfileEntry entry;
    const std::size_t s1 = row.find(' ');
    const std::size_t s2 =
        s1 == std::string_view::npos ? s1 : row.find(' ', s1 + 1);
    if (s1 == std::string_view::npos || s1 == 0 ||
        s2 == std::string_view::npos) {
      throw ProtocolError("malformed kernel row '" + std::string(row) + "'");
    }
    entry.kernel = std::string(row.substr(0, s1));
    entry.calls = parse_u64_value(row.substr(s1 + 1, s2 - s1 - 1), "calls");
    entry.total_ns = parse_u64_value(row.substr(s2 + 1), "total_ns");
    out.kernels.push_back(std::move(entry));
  }
  cursor.expect_done();
  return out;
}

std::string HealthRequest::encode() const { return {}; }

HealthRequest HealthRequest::parse(std::string_view payload) {
  (void)Doc(payload, {});
  return {};
}

std::string HealthResponse::encode() const {
  std::string out;
  put_field(out, "status", to_string(status));
  put_field(out, "poll_iterations", std::to_string(poll_iterations));
  put_field(out, "connections", std::to_string(connections));
  put_field(out, "connections_high_water",
            std::to_string(connections_high_water));
  put_field(out, "queue_depth_high_water",
            std::to_string(queue_depth_high_water));
  put_field(out, "requests", std::to_string(requests));
  put_field(out, "shed", std::to_string(shed));
  put_field(out, "snapshot_lag", std::to_string(snapshot_lag));
  put_field(out, "draining", draining ? "1" : "0");
  return out;
}

HealthResponse HealthResponse::parse(std::string_view payload) {
  const Doc doc(payload,
                {"status", "poll_iterations", "connections",
                 "connections_high_water", "queue_depth_high_water",
                 "requests", "shed", "snapshot_lag", "draining"});
  HealthResponse out;
  out.status = parse_status(doc);
  out.poll_iterations = doc.get_u64("poll_iterations");
  out.connections = doc.get_u64("connections");
  out.connections_high_water = doc.get_u64("connections_high_water");
  out.queue_depth_high_water = doc.get_u64("queue_depth_high_water");
  out.requests = doc.get_u64("requests");
  out.shed = doc.get_u64("shed");
  out.snapshot_lag = doc.get_u64("snapshot_lag");
  out.draining = doc.get_bool("draining");
  return out;
}

}  // namespace ash::fleet
