#pragma once

/// \file checkpoint.h
/// Save/restore of aging state.
///
/// The paper's campaign runs for days of wall-clock time per chip; a
/// virtual campaign wants the same operational affordance real labs have —
/// stop, power down, resume.  A checkpoint captures every trap occupancy
/// of a ring oscillator / chip / fabric as a line-oriented text document
/// (versioned header, one device per line), so campaigns resume bit-exact
/// and checkpoints diff cleanly under version control.
///
/// The checkpoint stores *state*, not structure: restoring requires an
/// identically-constructed object (same netlist/stages, same seeds — the
/// construction parameters are the schema).  A device-count/trap-count
/// mismatch is detected and rejected.

#include <iosfwd>
#include <string>

#include "ash/fpga/chip.h"
#include "ash/fpga/fabric.h"
#include "ash/fpga/ring_oscillator.h"

namespace ash::fpga {

/// Format version written to the header.
inline constexpr int kCheckpointVersion = 1;

/// Serialize the aging state (all trap occupancies).
void save_checkpoint(std::ostream& os, const RingOscillator& ro);
void save_checkpoint(std::ostream& os, const FpgaChip& chip);
void save_checkpoint(std::ostream& os, const Fabric& fabric);

/// Restore previously saved state into an identically-constructed object.
/// Throws std::runtime_error on malformed input, version mismatch, or a
/// structure mismatch (device/trap counts).
void load_checkpoint(std::istream& is, RingOscillator& ro);
void load_checkpoint(std::istream& is, FpgaChip& chip);
void load_checkpoint(std::istream& is, Fabric& fabric);

/// String-form convenience used by in-memory snapshotting (the fault-
/// tolerant campaign runner snapshots the chip at every phase boundary so a
/// watchdog abort or a killed campaign can rewind to a known-good state).
std::string checkpoint_string(const FpgaChip& chip);
void restore_checkpoint(const std::string& state, FpgaChip& chip);

/// Read one embedded checkpoint document (header through "end" trailer)
/// from a stream without interpreting it — used by container formats that
/// store a chip checkpoint inside a larger file.  Throws std::runtime_error
/// on a truncated stream.
std::string read_embedded_checkpoint(std::istream& is);

}  // namespace ash::fpga
