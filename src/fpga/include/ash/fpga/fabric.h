#pragma once

/// \file fabric.h
/// A netlist mapped onto the virtual fabric: per-device BTI state,
/// workload-driven aging, and aging-aware static timing analysis.
///
/// This is the generalization of the paper's RO experiment to arbitrary
/// combinational designs: the same bias-derived stress rules that put
/// {M1, M5} under stress in the Fig. 2 example decide, for *every* LUT of
/// the user's circuit and *every* workload vector, which devices wear out.
/// The timing view then answers the engineering question the paper's
/// margins discussion raises: how much has *my design's* critical path
/// drifted, and what does a rejuvenation schedule buy it?

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "ash/bti/condition.h"
#include "ash/bti/parameters.h"
#include "ash/fpga/delay.h"
#include "ash/fpga/lut.h"
#include "ash/fpga/netlist.h"
#include "ash/fpga/routing.h"

namespace ash::fpga {

/// Fabric construction parameters.
struct FabricConfig {
  std::uint64_t seed = 0xFAB;
  /// Lognormal sigma of per-instance delay mismatch.
  double mismatch_sigma = 0.05;
  DelayParams delay;
  bti::TdParameters td = bti::default_td_parameters();
  /// PBTI/NBTI amplitude ratio (see td_for_device in transistor.h).
  double pbti_amplitude_ratio = 1.0;
};

/// Net values for evaluation / DC aging: net name -> logic value.
using NetValues = std::unordered_map<std::string, bool>;

/// Signal probabilities: net name -> P(net = 1).
using NetProbabilities = std::unordered_map<std::string, double>;

/// Aging-aware timing report.
struct TimingReport {
  /// Worst primary-output arrival time.
  Seconds worst_arrival_s{0.0};
  /// The primary output that sets it.
  std::string critical_output;
  /// Instance names along the critical path, inputs first.
  std::vector<std::string> critical_path;
  /// Arrival time per primary output.
  std::unordered_map<std::string, double> arrival_s;
};

/// A design instantiated with aging state.
class Fabric {
 public:
  /// Validates the netlist and builds one LUT + routing block per node.
  Fabric(Netlist netlist, const FabricConfig& config);

  const Netlist& netlist() const { return netlist_; }

  /// Evaluate every net for the given primary-input assignment (all
  /// primary inputs must be present).  Returns values for all nets.
  NetValues evaluate(const NetValues& primary_inputs) const;

  /// DC aging: hold the given primary-input vector for dt seconds under
  /// the stress environment.  Each LUT/routing block stresses exactly the
  /// devices its local input values sensitize.
  void age_static(const NetValues& primary_inputs,
                  const bti::OperatingCondition& env, Seconds dt);

  /// AC aging: all nets toggling at the condition's duty for dt seconds.
  void age_toggling(const bti::OperatingCondition& env, Seconds dt);

  /// Propagate primary-input signal probabilities through the netlist
  /// (independent-signal approximation, exact per LUT over its four input
  /// combinations).  All primary inputs must be present with values in
  /// [0, 1].
  NetProbabilities propagate_probabilities(
      const NetProbabilities& primary_input_probs) const;

  /// Probabilistic workload aging: each device's stress duty is its exact
  /// stress probability under the propagated signal statistics (times the
  /// condition's duty).  This is the EDA-style alternative to enumerating
  /// workload vectors: a whole mission profile in one call.  Inputs with
  /// probability 0/1 reproduce age_static; 0.5 everywhere approaches
  /// age_toggling's uniform wear.
  void age_probabilistic(const NetProbabilities& primary_input_probs,
                         const bti::OperatingCondition& env, Seconds dt);

  /// Sleep/rejuvenation: every device sees the recovery bias.
  void age_sleep(const bti::OperatingCondition& env, Seconds dt);

  /// Worst-case (vector-independent) static timing at the current aging
  /// state: per-node delay is the max conducting-path delay over the four
  /// input combinations, arrivals propagate topologically.
  TimingReport timing(Volts vdd, Kelvin temp) const;

  /// Access to a node's LUT / routing (by instance name) for inspection.
  const PassTransistorLut2& lut_of(const std::string& instance) const;
  const RoutingBlock& routing_of(const std::string& instance) const;

  /// Index-based access (node order = netlist declaration order); used by
  /// checkpointing.
  const PassTransistorLut2& lut_at(int index) const {
    return luts_.at(static_cast<std::size_t>(index));
  }
  PassTransistorLut2& lut_at(int index) {
    return luts_.at(static_cast<std::size_t>(index));
  }
  const RoutingBlock& routing_at(int index) const {
    return routings_.at(static_cast<std::size_t>(index));
  }
  RoutingBlock& routing_at(int index) {
    return routings_.at(static_cast<std::size_t>(index));
  }

  int node_count() const { return static_cast<int>(luts_.size()); }

 private:
  std::size_t index_of(const std::string& instance) const;

  Netlist netlist_;
  FabricConfig config_;
  std::vector<std::size_t> topo_;
  std::vector<PassTransistorLut2> luts_;
  std::vector<RoutingBlock> routings_;
  std::unordered_map<std::string, std::size_t> instance_index_;
};

}  // namespace ash::fpga
