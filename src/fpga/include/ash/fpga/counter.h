#pragma once

/// \file counter.h
/// The 16-bit frequency counter of Fig. 3 and the measurement transfer
/// function of Eqs. (14)–(15).
///
/// The counter accumulates RO edges while gated by the external reference
/// clock: over one reference period the count is Cout = f_osc / (2 f_ref),
/// i.e. f_osc = 2 * Cout * f_ref (Eq. (14)) and the CUT delay is
/// Td = 1 / (2 f_osc) = 1 / (4 Cout f_ref) (Eq. (15)).  Gating over several
/// reference periods trades measurement time for resolution; the paper
/// reports +/-5-count repeatability, which we model as Gaussian counting
/// noise plus the inherent quantization.

#include <cstdint>

#include "ash/util/random.h"
#include "ash/util/units.h"

namespace ash::fpga {

/// Counter configuration.
struct CounterConfig {
  /// External reference clock (the paper uses 500 Hz).
  Hertz f_ref_hz{500.0};
  /// Number of reference periods per gated measurement.
  int gate_ref_periods = 16;
  /// Counter width; the hardware wraps past 2^bits - 1.
  int bits = 16;
  /// Standard deviation of the counting noise in counts (gate jitter,
  /// metastability of the sampled ripple counter).  The paper's +/-5-count
  /// bound corresponds to ~1.7 counts sigma (3-sigma).
  double noise_counts_sigma = 1.7;
};

/// One gated measurement.
struct CounterReading {
  /// Raw (possibly wrapped) register value after the gate closes.
  std::uint32_t raw_counts = 0;
  /// Total accumulated counts across the gate (unwrapped estimate).
  double counts = 0.0;
  /// Inferred oscillator frequency, Eq. (14) generalized to the gate span.
  Hertz frequency_hz{0.0};
  /// Inferred CUT delay, Eq. (15).
  Seconds delay_s{0.0};
};

/// Simulated gated frequency counter.  Deterministic given its RNG state.
class FrequencyCounter {
 public:
  FrequencyCounter(const CounterConfig& config, Rng rng);

  const CounterConfig& config() const { return config_; }

  /// Measure a true oscillator frequency.  Applies gating, counting noise
  /// and 16-bit wraparound.  Throws std::invalid_argument for non-positive
  /// frequencies.
  CounterReading measure(Hertz true_frequency);

  /// Frequency resolution of one gate step (per count).
  Hertz resolution_hz() const;

  /// Highest frequency measurable without register wrap at this gate.
  Hertz max_unwrapped_frequency_hz() const;

 private:
  CounterConfig config_;
  Rng rng_;
};

}  // namespace ash::fpga
