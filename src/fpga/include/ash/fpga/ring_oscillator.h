#pragma once

/// \file ring_oscillator.h
/// The test structure of Fig. 3: a ring of LUT-mapped inverters, each
/// followed by a routing block, with an enable that switches between AC
/// stress (oscillating) and DC stress (frozen) modes.
///
/// Measurement semantics: the RO period is the sum of one rising and one
/// falling traversal of the ring — per stage, the delay of both the
/// In0 = 0 and the In0 = 1 conducting paths.  Under DC stress only one of
/// those two paths ages (apart from the shared M5), which is why the
/// measured DC frequency degradation is roughly twice the AC one even
/// though the per-device AC shift is only ~0.27x of DC (Fig. 4).

#include <cstdint>
#include <vector>

#include "ash/bti/condition.h"
#include "ash/bti/parameters.h"
#include "ash/fpga/delay.h"
#include "ash/fpga/lut.h"
#include "ash/fpga/routing.h"

namespace ash::fpga {

/// Operating mode of the ring, selected by the enable logic of Fig. 3.
enum class RoMode {
  /// Enabled and oscillating — AC stress: every device toggles.
  kAcOscillating,
  /// Enable frozen — DC stress: the ring settles to alternating static
  /// values; stage i sees In0 = (i % 2 == 0).
  kDcFrozen,
  /// Sleep — supply gated to 0 V or driven negative; only recovery.
  kSleep,
};

/// One RO stage: LUT inverter + routing block.
struct RoStage {
  PassTransistorLut2 lut;
  RoutingBlock routing;
};

/// A 75-stage (configurable) LUT ring oscillator with per-device aging.
class RingOscillator {
 public:
  /// `delay_scales` supplies one process-variation factor per stage (size
  /// must equal `stages`); `seed` roots the per-device trap populations.
  RingOscillator(int stages, const std::vector<double>& delay_scales,
                 const DelayParams& delay_params,
                 const bti::TdParameters& td_params, std::uint64_t seed,
                 double pbti_amplitude_ratio = 1.0);

  int stage_count() const { return static_cast<int>(stages_.size()); }

  /// Delay of one full traversal of the ring for the given input phase.
  /// The static In1 = 1 of Fig. 2's example is applied.
  Seconds traversal_delay_s(bool in0_phase, Volts vdd, Kelvin temp) const;

  /// Oscillation period: rising + falling traversal.
  Seconds period_s(Volts vdd, Kelvin temp) const;

  /// Oscillation frequency f_osc = 1 / period.
  Hertz frequency_hz(Volts vdd, Kelvin temp) const;

  /// Age the whole ring for dt seconds.  `env` supplies voltage,
  /// temperature and (for kAcOscillating) the stress duty.
  void evolve(RoMode mode, const bti::OperatingCondition& env, Seconds dt);

  const RoStage& stage(int i) const {
    return stages_.at(static_cast<std::size_t>(i));
  }
  RoStage& stage(int i) { return stages_.at(static_cast<std::size_t>(i)); }

  const DelayParams& delay_params() const { return delay_params_; }

  /// Static In0 value stage i sits at in DC-frozen mode.
  static bool dc_input_of_stage(int i) { return i % 2 == 0; }

 private:
  std::vector<RoStage> stages_;
  DelayParams delay_params_;
};

}  // namespace ash::fpga
