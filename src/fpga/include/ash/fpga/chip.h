#pragma once

/// \file chip.h
/// A virtual 40 nm FPGA chip: the ring-oscillator CUT plus process
/// variation.
///
/// The paper's campaign uses five individual chips of the same family whose
/// fresh RO frequencies differ chip-to-chip ("the initial RO frequencies
/// for different fresh chips differ due to variations") — which is why its
/// recovery analysis uses the *recovered delay* metric (Eq. (16)) instead
/// of absolute frequency.  `FpgaChip` reproduces that: a global chip corner
/// plus per-stage mismatch, both drawn deterministically from the chip
/// seed.

#include <cstdint>

#include "ash/bti/condition.h"
#include "ash/bti/parameters.h"
#include "ash/fpga/delay.h"
#include "ash/fpga/ring_oscillator.h"

namespace ash::fpga {

/// Construction parameters of one chip.
struct ChipConfig {
  /// Chip number as in Table 1 (1..5 in the paper's campaign).
  int chip_id = 1;
  /// Root seed; every trap, mismatch draw and noise stream of this chip
  /// derives from it.
  std::uint64_t seed = 0x5eedu;
  /// Ring oscillator length (the paper's CUT uses 75 LUT inverters).
  int ro_stages = 75;
  /// Sigma of the global (chip corner) lognormal delay factor.
  double chip_corner_sigma = 0.03;
  /// Sigma of per-stage lognormal mismatch.
  double stage_mismatch_sigma = 0.05;
  /// Electrical delay model.
  DelayParams delay;
  /// Device physics (defaults to the calibrated 40 nm parameter set).
  bti::TdParameters td = bti::default_td_parameters();
  /// PBTI (NMOS) aging amplitude relative to NBTI (PMOS); 1 = the paper's
  /// high-k-era calibration, < 1 for SiON-era technologies (Sec. 1).
  double pbti_amplitude_ratio = 1.0;
};

/// One chip under test.
class FpgaChip {
 public:
  explicit FpgaChip(const ChipConfig& config);

  int id() const { return config_.chip_id; }
  const ChipConfig& config() const { return config_; }

  /// The CUT.
  const RingOscillator& ro() const { return ro_; }
  RingOscillator& ro() { return ro_; }

  /// True RO frequency at the given measurement supply/temperature.
  Hertz ro_frequency_hz(Volts vdd, Kelvin temp) const {
    return ro_.frequency_hz(vdd, temp);
  }

  /// True CUT delay (one-way traversal average), Td = 1/(2 f_osc).
  Seconds cut_delay_s(Volts vdd, Kelvin temp) const {
    return ro_.period_s(vdd, temp) / 2.0;
  }

  /// Age the chip for dt seconds.
  void evolve(RoMode mode, const bti::OperatingCondition& env, Seconds dt) {
    ro_.evolve(mode, env, dt);
  }

  /// The chip-corner delay factor actually drawn (diagnostics/tests).
  double chip_corner_scale() const { return corner_scale_; }

 private:
  ChipConfig config_;
  double corner_scale_;
  RingOscillator ro_;
};

}  // namespace ash::fpga
