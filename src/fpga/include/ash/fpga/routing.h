#pragma once

/// \file routing.h
/// Routing block between LUTs — "all the routing elements between LUT
/// blocks" (Sec. 3.2).
///
/// Modeled as a two-inverter repeater (signal restoration through the
/// programmable interconnect): devices R1N/R1P (first inverter) and
/// R2N/R2P (second inverter).  Net non-inverting, so a ring of
/// LUT-inverters + routing keeps odd inversion parity.  Stress follows the
/// same ON-device rule as the LUT buffer: input 1 stresses the NMOS,
/// input 0 stresses the PMOS.

#include <array>
#include <cstdint>
#include <vector>

#include "ash/bti/condition.h"
#include "ash/bti/parameters.h"
#include "ash/fpga/delay.h"
#include "ash/fpga/transistor.h"

namespace ash::fpga {

/// Indices of the four devices of one routing block.
enum RoutingDevice : int {
  kR1N = 0,
  kR1P,
  kR2N,
  kR2P,
  kRoutingDeviceCount
};

/// One routing block with per-device BTI state.
class RoutingBlock {
 public:
  RoutingBlock(double delay_scale, const bti::TdParameters& params,
               std::uint64_t seed, double pbti_amplitude_ratio = 1.0);

  /// Devices on the timed path when the block carries logic value `v`:
  /// the ON driver of each inverter stage.
  std::array<int, 2> conducting_path(bool v) const;

  /// Devices under BTI stress when the block statically carries `v`
  /// (identical to the conducting path — the ON device is the stressed
  /// device).
  std::vector<int> stressed_devices(bool v) const;

  /// Propagation delay through the block for input value `v`.  Cached per
  /// carried value with version-stamp invalidation (see delay.h).
  double path_delay(bool v, const DelayParams& dp, Volts vdd,
                    Kelvin temp) const;

  /// DC aging with a static carried value.
  void age_static(bool v, const bti::OperatingCondition& env, Seconds dt);
  /// AC aging (toggling value): all devices at the condition's duty.
  void age_toggling(const bti::OperatingCondition& env, Seconds dt);
  /// Sleep/recovery aging: all devices at the recovery bias.
  void age_sleep(const bti::OperatingCondition& env, Seconds dt);

  const Transistor& device(int index) const {
    return devices_.at(static_cast<std::size_t>(index));
  }
  Transistor& device(int index) {
    return devices_.at(static_cast<std::size_t>(index));
  }

 private:
  std::vector<Transistor> devices_;
  /// One memo slot per carried logic value (see delay.h).
  mutable std::array<PathDelayCache, 2> path_cache_{};
};

}  // namespace ash::fpga
