#pragma once

/// \file netlist.h
/// LUT-level netlists: the designs a user maps onto the virtual fabric.
///
/// The paper ages one fixed test structure (the RO of Fig. 3).  A library
/// users would adopt must age *their* designs: a `Netlist` describes an
/// arbitrary combinational circuit of 2-input LUTs (each followed by its
/// routing block), and `Fabric` (fabric.h) instantiates it with per-device
/// BTI state, workload-driven aging and aging-aware timing analysis.
///
/// Conventions: every net has a unique name; each net is driven either by
/// exactly one LUT output or by a primary input; the graph must be acyclic
/// (combinational).  `validate()` enforces all of it with precise errors.

#include <array>
#include <string>
#include <vector>

#include "ash/fpga/lut.h"

namespace ash::fpga {

/// One 2-input LUT instance.
struct LutNode {
  std::string name;    ///< instance name, e.g. "u3"
  LutConfig config{};  ///< truth table, indexed by 2*in1 + in0
  /// Input net names (in0, in1).  A LUT that ignores an input still names
  /// a net for it (tie it to any existing net).
  std::array<std::string, 2> inputs;
  std::string output;  ///< net driven by this LUT (via its routing block)
};

/// A combinational LUT netlist.
struct Netlist {
  std::string name;
  std::vector<std::string> primary_inputs;
  std::vector<LutNode> nodes;
  std::vector<std::string> primary_outputs;

  /// Throws std::invalid_argument with a descriptive message when the
  /// netlist is malformed: duplicate/undriven/multiply-driven nets,
  /// dangling references, combinational cycles, or missing outputs.
  void validate() const;

  /// Topological order of node indices (inputs before users).  Throws on
  /// cycles.  Stable: preserves declaration order among independents.
  std::vector<std::size_t> topological_order() const;
};

// --- Library of standard truth tables (indexed by 2*in1 + in0) -------------

constexpr LutConfig lut_and() { return {false, false, false, true}; }
constexpr LutConfig lut_or() { return {false, true, true, true}; }
constexpr LutConfig lut_xor() { return {false, true, true, false}; }
constexpr LutConfig lut_nand() { return {true, true, true, false}; }
constexpr LutConfig lut_nor() { return {true, false, false, false}; }
constexpr LutConfig lut_xnor() { return {true, false, false, true}; }
constexpr LutConfig lut_not_a() { return {true, false, true, false}; }
constexpr LutConfig lut_buf_a() { return {false, true, false, true}; }

// --- Generators for common benchmark circuits ------------------------------

/// n-stage inverter chain: in -> u0 -> ... -> u(n-1) -> out.
Netlist inverter_chain(int stages);

/// Ripple-carry adder over two `bits`-wide operands a[i], b[i] with carry
/// in "cin"; outputs s[i] and "cout".  Built from 2-input LUTs (XOR/AND/OR
/// decomposition: 5 LUTs per full adder).
Netlist ripple_carry_adder(int bits);

/// ISCAS-85 c17: the classic 6-NAND benchmark (5 inputs, 2 outputs).
Netlist c17();

}  // namespace ash::fpga
