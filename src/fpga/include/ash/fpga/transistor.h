#pragma once

/// \file transistor.h
/// An aged transistor: electrical identity plus its BTI trap ensemble.
///
/// Every transistor on the virtual fabric owns its own `bti::TrapEnsemble`
/// (seeded per device), which is what makes the paper's two structural
/// hypotheses (Sec. 3.2) properties of the implementation rather than
/// assumptions:
///   * Hypothesis 1 — under DC stress the set of stressed devices is a
///     constant function of (configuration, inputs);
///   * Hypothesis 2 — recovery acts only on devices that carry trapped
///     charge; "fresh" devices are untouched because their occupancies are
///     zero.

#include <cstdint>
#include <string>

#include "ash/bti/condition.h"
#include "ash/bti/parameters.h"
#include "ash/bti/trap_ensemble.h"

namespace ash::fpga {

/// NMOS devices suffer PBTI under positive gate bias; PMOS devices suffer
/// NBTI under negative bias.  The TD kinetics are the same in this model
/// (the paper: "the PBTI effect can be modeled similar to the NBTI
/// effect"), but the polarity determines *when* a device is stressed.
enum class DeviceType { kNmos, kPmos };

/// Immutable electrical identity of a device in a stage netlist.
struct TransistorSpec {
  std::string name;          ///< e.g. "M1", "M5", "R1P"
  DeviceType type = DeviceType::kNmos;
  /// Fresh delay of the path segment this device drives, at nominal
  /// supply.  Zero for devices that never sit on a timed path.
  Seconds nominal_delay_s{0.0};
};

/// Device-type-specific parameter derivation: PBTI (NMOS) aging amplitude
/// relative to NBTI (PMOS).  The paper's Sec. 1: PBTI was "negligible in
/// previous technologies" (SiON gates) but is "rapidly becoming an
/// important reliability issue with the introduction of high-k and metal
/// gates".  The default calibration treats the 40 nm parts' NBTI and PBTI
/// alike (ratio 1); pass a ratio < 1 to study SiON-era asymmetry (see
/// bench_ablation_pbti).
inline bti::TdParameters td_for_device(DeviceType type,
                                       const bti::TdParameters& base,
                                       double pbti_amplitude_ratio) {
  if (type == DeviceType::kPmos || pbti_amplitude_ratio == 1.0) return base;
  bti::TdParameters scaled = base;
  scaled.delta_vth_mean_v = scaled.delta_vth_mean_v * pbti_amplitude_ratio;
  return scaled;
}

/// A transistor with BTI state.
class Transistor {
 public:
  /// `delay_scale` applies process variation (chip corner x local mismatch)
  /// to the fresh segment delay.
  Transistor(TransistorSpec spec, double delay_scale,
             const bti::TdParameters& params, std::uint64_t seed)
      : spec_(std::move(spec)),
        delay_s_(spec_.nominal_delay_s * delay_scale),
        ensemble_(params, seed) {}

  const TransistorSpec& spec() const { return spec_; }
  const std::string& name() const { return spec_.name; }
  DeviceType type() const { return spec_.type; }

  /// Variation-adjusted fresh segment delay.
  Seconds fresh_delay_s() const { return delay_s_; }

  /// Current BTI threshold shift magnitude (volts).  O(1) between aging
  /// steps — the ensemble caches the dot product.
  double delta_vth() const { return ensemble_.delta_vth(); }

  /// Monotonic aging-state counter of the underlying ensemble; delay
  /// caches use it as a dirty flag (see lut.h / routing.h).
  std::uint64_t state_version() const { return ensemble_.state_version(); }

  /// Which BTI flavour stresses this device.
  bti::StressType stress_type() const {
    return type() == DeviceType::kPmos ? bti::StressType::kNbti
                                       : bti::StressType::kPbti;
  }

  /// Advance the device's trap state.
  void evolve(const bti::OperatingCondition& c, Seconds dt) {
    ensemble_.evolve(c, dt);
  }

  const bti::TrapEnsemble& ensemble() const { return ensemble_; }
  bti::TrapEnsemble& ensemble() { return ensemble_; }

 private:
  TransistorSpec spec_;
  Seconds delay_s_;
  bti::TrapEnsemble ensemble_;
};

}  // namespace ash::fpga
