#pragma once

/// \file delay.h
/// First-order gate-delay model — Eq. (5) of the paper and its
/// BTI sensitivity (Eq. (6)).
///
/// Propagation delay of a segment driven by one transistor:
///   td ~ CL * Vdd / Id ~ Vdd / (Vdd - Vth)        (Eq. (5), alpha = 1)
/// normalized so that td(vdd_nominal, DeltaVth = 0) == td0.  The
/// linearization DeltaTd ~ td0 * DeltaVth / (Vdd - Vth) (Eq. (6)) is what
/// the paper works with; we keep the full expression, which reduces to
/// Eq. (6) for small shifts and additionally supports supply scaling for
/// the GNOMO baseline.

#include <cstdint>
#include <stdexcept>

#include "ash/util/units.h"

namespace ash::fpga {

/// Electrical constants of the delay model, shared by every segment of a
/// chip.
struct DelayParams {
  /// Nominal core supply (the 40 nm parts run at 1.2 V).
  Volts vdd_nominal_v{1.2};
  /// Fresh threshold voltage magnitude.
  Volts vth0_v{0.4};
  /// Optional linear temperature coefficient of delay (fractional per K).
  /// Default 0: the paper's methodology compares readings taken under
  /// identical environmental conditions, so aging is the only delay driver;
  /// enable this to study temperature-sensitive measurement instead.
  double temp_coeff_per_k = 0.0;
  /// Reference temperature for the temperature coefficient.
  Kelvin temp_ref_k{293.15};
};

/// True if a gate with threshold shift `dvth_v` still switches at supply
/// `vdd_v` (needs headroom above threshold).
inline bool is_functional(const DelayParams& p, Volts vdd, Volts dvth) {
  return vdd.value() - p.vth0_v.value() - dvth.value() > 0.05;
}

/// Delay of a segment with fresh delay td0 (measured at nominal supply and
/// reference temperature) for the given threshold shift, supply and
/// temperature.  Throws std::domain_error if the gate has no overdrive left
/// (the circuit would simply stop oscillating).
inline double segment_delay(const DelayParams& p, Seconds td0, Volts dvth,
                            Volts vdd, Kelvin temp) {
  const double td0_s = td0.value();
  const double dvth_v = dvth.value();
  const double vdd_v = vdd.value();
  const double temp_k = temp.value();
  if (!is_functional(p, vdd, dvth)) {
    throw std::domain_error(
        "segment_delay: no gate overdrive (circuit not functional)");
  }
  const double fresh_factor =
      p.vdd_nominal_v.value() / (p.vdd_nominal_v - p.vth0_v).value();
  const double aged_factor = vdd_v / (vdd_v - p.vth0_v.value() - dvth_v);
  const double temp_factor =
      1.0 + p.temp_coeff_per_k * (temp_k - p.temp_ref_k.value());
  return td0_s * (aged_factor / fresh_factor) * temp_factor;
}

/// Memo slot for one conducting-path delay (DESIGN.md Sec. 8).  The delay
/// of a path is a pure function of (DelayParams, Vdd, T, aging state of the
/// path's devices); `stamp` is the sum of the devices' ensemble state
/// versions, so any `evolve`, `set_occupancies` or `reset` anywhere on the
/// path invalidates the slot without the cache holding back-pointers.
/// A hit returns the previously computed double verbatim, so cached reads
/// are bit-identical to recomputation.
struct PathDelayCache {
  Volts vdd_nominal_v{0.0};
  Volts vth0_v{0.0};
  double temp_coeff_per_k = 0.0;
  Kelvin temp_ref_k{0.0};
  Volts vdd_v{0.0};
  Kelvin temp_k{0.0};
  std::uint64_t stamp = 0;
  bool valid = false;
  Seconds delay_s{0.0};

  bool matches(const DelayParams& p, Volts vdd, Kelvin temp,
               std::uint64_t s) const {
    return valid && stamp == s && vdd_v == vdd && temp_k == temp &&
           vdd_nominal_v == p.vdd_nominal_v && vth0_v == p.vth0_v &&
           temp_coeff_per_k == p.temp_coeff_per_k && temp_ref_k == p.temp_ref_k;
  }

  void store(const DelayParams& p, Volts vdd, Kelvin temp, std::uint64_t s,
             Seconds delay) {
    vdd_nominal_v = p.vdd_nominal_v;
    vth0_v = p.vth0_v;
    temp_coeff_per_k = p.temp_coeff_per_k;
    temp_ref_k = p.temp_ref_k;
    vdd_v = vdd;
    temp_k = temp;
    stamp = s;
    valid = true;
    delay_s = delay;
  }
};

}  // namespace ash::fpga
