#pragma once

/// \file lut.h
/// Pass-transistor 2-input LUT — the Fig. 2 structure of the paper.
///
/// Netlist (concrete realization of the generic PT-LUT; exact commercial
/// netlists are unavailable, to the paper's authors as well):
///
///   * The four configuration bits C0..C3 (truth table indexed by
///     2*In1 + In0) feed the pass tree directly.
///   * Level 1 — four NMOS pass transistors select within each bit pair:
///       branch B (used when In1 = 1):  M1 (gate In0,  passes C3),
///                                      M2 (gate !In0, passes C2);
///       branch A (used when In1 = 0):  M3 (gate In0,  passes C1),
///                                      M4 (gate !In0, passes C0).
///   * Level 2 — two NMOS pass transistors select the branch:
///       M5 (gate In1) passes branch B, M6 (gate !In1) passes branch A.
///   * A two-stage (level-restoring, non-inverting) output buffer:
///       stage 1: M7 = NMOS, M8 = PMOS;  stage 2: M9 = NMOS, M10 = PMOS.
///     LUT output = C_sel.
///
/// Stress rule (device bias analysis, per static input vector):
///   * an NMOS pass transistor is PBTI-stressed iff its gate is high AND
///     the value it passes is logic 0 (full Vgs = Vdd; a device passing a 1
///     sits at Vgs ~ Vth and is effectively unstressed);
///   * inverter stages: input 1 stresses the NMOS (PBTI), input 0 stresses
///     the PMOS (NBTI) — the ON device is the stressed device.
///
/// For the paper's running example (LUT mapped to an inverter, In1 = 1,
/// i.e. config C2 = 1, C3 = 0 so out = !In0):
///   In0 = 1  =>  stressed on the POI: {M1, M5, M8, M9};
///   In0 = 0  =>  stressed on the POI: {M7, M10}.
/// This reproduces the paper's {M1, M5} / {M7} example exactly, extended by
/// the complementary buffer devices its pre-buffer accounting omits.  Both
/// structural hypotheses of Sec. 3.2 hold by construction: the stress set
/// is a pure function of (config, inputs) (H1), and recovery acts only on
/// trapped devices (H2).

#include <array>
#include <cstdint>
#include <vector>

#include "ash/bti/condition.h"
#include "ash/bti/parameters.h"
#include "ash/fpga/delay.h"
#include "ash/fpga/transistor.h"

namespace ash::fpga {

/// Indices of the ten devices of one LUT.
enum LutDevice : int {
  kM1 = 0,  // L1 pass, gate In0,  branch B (passes C3)
  kM2,      // L1 pass, gate !In0, branch B (passes C2)
  kM3,      // L1 pass, gate In0,  branch A (passes C1)
  kM4,      // L1 pass, gate !In0, branch A (passes C0)
  kM5,      // L2 pass, gate In1   (branch B)
  kM6,      // L2 pass, gate !In1  (branch A)
  kM7,      // buffer stage 1 NMOS
  kM8,      // buffer stage 1 PMOS
  kM9,      // buffer stage 2 NMOS
  kM10,     // buffer stage 2 PMOS
  kLutDeviceCount
};

/// A 2-input LUT configuration: truth table indexed by 2*In1 + In0.
using LutConfig = std::array<bool, 4>;

/// The inverter configuration used by the ring oscillator: out = !In0
/// regardless of In1 (the paper drives In1 = 1 and stores "0101").
constexpr LutConfig inverter_config() {
  return {true, false, true, false};
}

/// One pass-transistor LUT with per-device BTI state.
class PassTransistorLut2 {
 public:
  /// `delay_scale` applies process variation to every segment of this LUT;
  /// `seed` individualizes the trap populations; `pbti_amplitude_ratio`
  /// scales NMOS (PBTI) aging relative to PMOS (NBTI) — see
  /// td_for_device().  Must be > 0.
  PassTransistorLut2(LutConfig config, double delay_scale,
                     const bti::TdParameters& params, std::uint64_t seed,
                     double pbti_amplitude_ratio = 1.0);

  const LutConfig& config() const { return config_; }

  /// Logic function: out = C[2*In1 + In0].
  bool evaluate(bool in0, bool in1) const;

  /// Device bias analysis: which devices are under BTI stress for the given
  /// static input vector (includes off-POI level-1 devices of the
  /// unselected branch, which age even though they do not affect delay).
  std::vector<int> stressed_devices(bool in0, bool in1) const;

  /// Subset of `stressed_devices` on the conducting path — the paper's
  /// "stressed transistors on the POI".
  std::vector<int> stressed_on_poi(bool in0, bool in1) const;

  /// Devices on the conducting (timed) path for the given inputs, in signal
  /// order: level-1 pass, level-2 pass, stage-1 driver, stage-2 driver.
  std::array<int, 4> conducting_path(bool in0, bool in1) const;

  /// Delay of the conducting path for the given inputs (seconds).  Cached
  /// per input vector: repeated reads between aging steps cost four
  /// version loads instead of four trap-ensemble walks, and a hit returns
  /// the previously computed value bit-for-bit.
  double path_delay(bool in0, bool in1, const DelayParams& dp, Volts vdd,
                    Kelvin temp) const;

  /// Age the LUT under *static* inputs (DC stress): stressed devices see
  /// the stress condition, all others passively anneal (0 V gate) at the
  /// same temperature.
  void age_static(bool in0, bool in1, const bti::OperatingCondition& env,
                  Seconds dt);

  /// Age the LUT under *toggling* inputs (AC stress / normal oscillation):
  /// every device sees the stress voltage at the given duty.
  void age_toggling(const bti::OperatingCondition& env, Seconds dt);

  /// Age the LUT during a sleep/recovery interval: every device sees the
  /// recovery bias (0 V or negative) at the ambient temperature.
  void age_sleep(const bti::OperatingCondition& env, Seconds dt);

  const Transistor& device(int index) const {
    return devices_.at(static_cast<std::size_t>(index));
  }
  Transistor& device(int index) {
    return devices_.at(static_cast<std::size_t>(index));
  }

  /// Largest threshold shift across the ten devices (diagnostics).
  double max_delta_vth() const;

 private:
  LutConfig config_;
  std::vector<Transistor> devices_;
  /// One memo slot per input vector, indexed 2*in1 + in0 (see delay.h).
  mutable std::array<PathDelayCache, 4> path_cache_{};
};

}  // namespace ash::fpga
