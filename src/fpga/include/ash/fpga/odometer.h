#pragma once

/// \file odometer.h
/// On-chip aging sensor — a "silicon odometer" in the spirit of the
/// paper's refs. [7] (Kim et al.) and [8] (Cabe et al.).
///
/// The paper's reactive-recovery discussion presupposes that a system can
/// *track* its own threshold drift ("it needs to track changing threshold
/// voltages").  This sensor provides that capability the way real silicon
/// does: two matched ring oscillators, one exposed to mission stress and
/// one protected (power-gated except during reads).  The differential
/// (beat) frequency cancels common-mode variation — process corner,
/// temperature of the read, supply droop — so the readout isolates aging.
///
/// Honesty of the model: the protected oscillator still ages a little
/// (each read exercises it briefly), reads are quantized by the gated
/// counter, and the estimate is therefore biased and noisy exactly the way
/// a hardware odometer is.  Tests quantify both effects.

#include <cstdint>

#include "ash/bti/condition.h"
#include "ash/bti/parameters.h"
#include "ash/fpga/counter.h"
#include "ash/fpga/ring_oscillator.h"
#include "ash/util/random.h"

namespace ash::fpga {

/// Sensor construction parameters.
struct OdometerConfig {
  /// Stages per oscillator (small: the sensor must be cheap).
  int stages = 15;
  std::uint64_t seed = 0x0D0;
  /// Local mismatch between the two oscillators (lognormal sigma); the
  /// differential readout is calibrated at t = 0 to cancel it.
  double mismatch_sigma = 0.02;
  CounterConfig counter;
  DelayParams delay;
  bti::TdParameters td = bti::default_td_parameters();
  /// Supply used for reads.
  Volts read_vdd_v{1.2};
  /// Probability that a read attempt returns no data (scan-chain /
  /// readback bus failure).  The oscillators still wake and age — a
  /// dropped read is never free — but the reading comes back invalid
  /// with a NaN estimate.  Consumers (the multi-core telemetry path)
  /// must tolerate such readings; `mc::CoreFaultPlan` models the same
  /// channel at fleet scale.
  double read_dropout_probability = 0.0;
};

/// One sensor reading.
struct OdometerReading {
  Hertz stressed_hz{0.0};
  Hertz reference_hz{0.0};
  /// Estimated fractional frequency degradation of the stressed mirror,
  /// already normalized by the t = 0 calibration.  NaN when the read
  /// dropped.
  double degradation_estimate = 0.0;
  /// False when the readback failed; the frequency fields are then zero.
  bool valid = true;
};

/// Two-oscillator differential aging sensor.
class SiliconOdometer {
 public:
  explicit SiliconOdometer(const OdometerConfig& config);

  /// Expose the stressed mirror to mission conditions for dt seconds; the
  /// reference stays power-gated at the same temperature.
  void mission(const bti::OperatingCondition& condition, Seconds dt);

  /// Put both oscillators to sleep under recovery conditions (the sensor
  /// heals together with the fabric it mirrors).
  void sleep(const bti::OperatingCondition& condition, Seconds dt);

  /// Take a reading at the given die temperature.  Both oscillators run
  /// briefly (the read itself is a tiny AC stress on each), then their
  /// frequencies are counted and the calibrated differential is returned.
  OdometerReading read(Kelvin temp);

  /// Ground truth for tests: the stressed mirror's true degradation.
  double true_degradation(Kelvin temp) const;

  /// Number of reads taken so far (dropped reads included: they age the
  /// oscillators too).
  int reads_taken() const { return reads_; }

 private:
  OdometerConfig config_;
  RingOscillator stressed_;
  RingOscillator reference_;
  FrequencyCounter counter_stressed_;
  FrequencyCounter counter_reference_;
  Rng dropout_rng_;  ///< read-path failure draws, split from config.seed
  double calibration_ratio_ = 1.0;  ///< f_s/f_r at t = 0 (mismatch cancel)
  Hertz fresh_stressed_hz_{0.0};
  int reads_ = 0;
};

}  // namespace ash::fpga
