#include "ash/fpga/checkpoint.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace ash::fpga {

namespace {

/// Collect every trap ensemble of an object in a canonical order (const
/// view for saving, mutable view for restoring).
std::vector<const bti::TrapEnsemble*> ensembles_of(const RingOscillator& ro) {
  std::vector<const bti::TrapEnsemble*> out;
  for (int s = 0; s < ro.stage_count(); ++s) {
    const auto& stage = ro.stage(s);
    for (int d = 0; d < kLutDeviceCount; ++d) {
      out.push_back(&stage.lut.device(d).ensemble());
    }
    for (int d = 0; d < kRoutingDeviceCount; ++d) {
      out.push_back(&stage.routing.device(d).ensemble());
    }
  }
  return out;
}

std::vector<bti::TrapEnsemble*> mutable_ensembles_of(RingOscillator& ro) {
  std::vector<bti::TrapEnsemble*> out;
  for (int s = 0; s < ro.stage_count(); ++s) {
    auto& stage = ro.stage(s);
    for (int d = 0; d < kLutDeviceCount; ++d) {
      out.push_back(&stage.lut.device(d).ensemble());
    }
    for (int d = 0; d < kRoutingDeviceCount; ++d) {
      out.push_back(&stage.routing.device(d).ensemble());
    }
  }
  return out;
}

std::vector<const bti::TrapEnsemble*> ensembles_of(const Fabric& fabric) {
  std::vector<const bti::TrapEnsemble*> out;
  for (int n = 0; n < fabric.node_count(); ++n) {
    for (int d = 0; d < kLutDeviceCount; ++d) {
      out.push_back(&fabric.lut_at(n).device(d).ensemble());
    }
    for (int d = 0; d < kRoutingDeviceCount; ++d) {
      out.push_back(&fabric.routing_at(n).device(d).ensemble());
    }
  }
  return out;
}

std::vector<bti::TrapEnsemble*> mutable_ensembles_of(Fabric& fabric) {
  std::vector<bti::TrapEnsemble*> out;
  for (int n = 0; n < fabric.node_count(); ++n) {
    for (int d = 0; d < kLutDeviceCount; ++d) {
      out.push_back(&fabric.lut_at(n).device(d).ensemble());
    }
    for (int d = 0; d < kRoutingDeviceCount; ++d) {
      out.push_back(&fabric.routing_at(n).device(d).ensemble());
    }
  }
  return out;
}

void write(std::ostream& os, const char* kind,
           const std::vector<const bti::TrapEnsemble*>& ensembles) {
  os << "ash-checkpoint v" << kCheckpointVersion << " " << kind
     << " devices=" << ensembles.size() << "\n";
  os.precision(17);
  for (const auto* e : ensembles) {
    os << "D " << e->trap_count();
    for (double occ : e->occupancies()) os << ' ' << occ;
    os << '\n';
  }
  os << "end\n";
}

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("checkpoint: " + what);
}

void read(std::istream& is, const char* kind,
          const std::vector<bti::TrapEnsemble*>& ensembles) {
  std::string line;
  if (!std::getline(is, line)) fail("empty stream");
  std::istringstream header(line);
  std::string magic;
  std::string version;
  std::string got_kind;
  std::string devices;
  header >> magic >> version >> got_kind >> devices;
  if (magic != "ash-checkpoint") fail("bad magic");
  if (version != "v" + std::to_string(kCheckpointVersion)) {
    fail("unsupported version '" + version + "'");
  }
  if (got_kind != kind) {
    fail("kind mismatch: stream has '" + got_kind + "', object is '" +
         std::string(kind) + "'");
  }
  const std::string expect = "devices=" + std::to_string(ensembles.size());
  if (devices != expect) fail("device count mismatch (" + devices + ")");

  // Parse into a staging area first so a malformed stream cannot leave the
  // object half-restored.
  std::vector<std::vector<double>> staged;
  staged.reserve(ensembles.size());
  for (std::size_t i = 0; i < ensembles.size(); ++i) {
    if (!std::getline(is, line)) fail("truncated stream");
    std::istringstream row(line);
    std::string tag;
    int traps = 0;
    row >> tag >> traps;
    if (tag != "D") fail("bad device row");
    if (traps != ensembles[i]->trap_count()) {
      fail("trap count mismatch on device " + std::to_string(i));
    }
    std::vector<double> occ(static_cast<std::size_t>(traps));
    for (auto& v : occ) {
      if (!(row >> v)) fail("short device row");
      if (v < 0.0 || v > 1.0) fail("occupancy out of range");
    }
    staged.push_back(std::move(occ));
  }
  if (!std::getline(is, line) || line != "end") fail("missing trailer");

  for (std::size_t i = 0; i < ensembles.size(); ++i) {
    ensembles[i]->set_occupancies(staged[i]);
  }
}

}  // namespace

void save_checkpoint(std::ostream& os, const RingOscillator& ro) {
  write(os, "ring-oscillator", ensembles_of(ro));
}

void save_checkpoint(std::ostream& os, const FpgaChip& chip) {
  write(os, "chip", ensembles_of(chip.ro()));
}

void save_checkpoint(std::ostream& os, const Fabric& fabric) {
  write(os, "fabric", ensembles_of(fabric));
}

void load_checkpoint(std::istream& is, RingOscillator& ro) {
  read(is, "ring-oscillator", mutable_ensembles_of(ro));
}

void load_checkpoint(std::istream& is, FpgaChip& chip) {
  read(is, "chip", mutable_ensembles_of(chip.ro()));
}

void load_checkpoint(std::istream& is, Fabric& fabric) {
  read(is, "fabric", mutable_ensembles_of(fabric));
}

std::string checkpoint_string(const FpgaChip& chip) {
  std::ostringstream os;
  save_checkpoint(os, chip);
  return os.str();
}

void restore_checkpoint(const std::string& state, FpgaChip& chip) {
  std::istringstream is(state);
  load_checkpoint(is, chip);
}

std::string read_embedded_checkpoint(std::istream& is) {
  std::string out;
  std::string line;
  while (std::getline(is, line)) {
    out += line;
    out += '\n';
    if (line == "end") return out;
  }
  fail("embedded checkpoint truncated (no trailer)");
}

}  // namespace ash::fpga
