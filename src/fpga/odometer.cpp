#include "ash/fpga/odometer.h"

#include <cmath>
#include <vector>

namespace ash::fpga {

namespace {

std::vector<double> draw_scales(int stages, double sigma, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> scales;
  scales.reserve(static_cast<std::size_t>(stages));
  for (int i = 0; i < stages; ++i) {
    scales.push_back(std::exp(rng.normal(0.0, sigma)));
  }
  return scales;
}

}  // namespace

SiliconOdometer::SiliconOdometer(const OdometerConfig& config)
    : config_(config),
      stressed_(config.stages,
                draw_scales(config.stages, config.mismatch_sigma,
                            derive_seed(config.seed, 1)),
                config.delay, config.td, derive_seed(config.seed, 2)),
      reference_(config.stages,
                 draw_scales(config.stages, config.mismatch_sigma,
                             derive_seed(config.seed, 3)),
                 config.delay, config.td, derive_seed(config.seed, 4)),
      counter_stressed_(config.counter, Rng(derive_seed(config.seed, 5))),
      counter_reference_(config.counter, Rng(derive_seed(config.seed, 6))),
      dropout_rng_(derive_seed(config.seed, 7)) {
  // Factory calibration: record the fresh frequency ratio so the
  // differential readout cancels the static mismatch.
  const Kelvin t0 = config_.delay.temp_ref_k;
  const Volts read_vdd = config_.read_vdd_v;
  fresh_stressed_hz_ = stressed_.frequency_hz(read_vdd, t0);
  calibration_ratio_ =
      fresh_stressed_hz_ / reference_.frequency_hz(read_vdd, t0);
}

void SiliconOdometer::mission(const bti::OperatingCondition& condition,
                              Seconds dt) {
  const RoMode mode = condition.gate_stress_duty >= 1.0
                          ? RoMode::kDcFrozen
                          : RoMode::kAcOscillating;
  stressed_.evolve(mode, condition, dt);
  // The reference is power-gated: unbiased at die temperature.
  bti::OperatingCondition gated = condition;
  gated.voltage_v = Volts{0.0};
  gated.gate_stress_duty = 0.0;
  reference_.evolve(RoMode::kSleep, gated, dt);
}

void SiliconOdometer::sleep(const bti::OperatingCondition& condition,
                            Seconds dt) {
  stressed_.evolve(RoMode::kSleep, condition, dt);
  reference_.evolve(RoMode::kSleep, condition, dt);
}

OdometerReading SiliconOdometer::read(Kelvin temp) {
  // Each read spins both rings for one gate: a tiny, honest AC stress.
  const double gate_s =
      static_cast<double>(config_.counter.gate_ref_periods) /
      config_.counter.f_ref_hz.value();
  bti::OperatingCondition read_env;
  read_env.voltage_v = config_.read_vdd_v;
  read_env.temperature_k = temp;
  read_env.gate_stress_duty = 0.5;
  stressed_.evolve(RoMode::kAcOscillating, read_env, Seconds{gate_s});
  reference_.evolve(RoMode::kAcOscillating, read_env, Seconds{gate_s});
  ++reads_;

  // Readback failure: the rings already spun (and aged), but no counts
  // come home.  The caller gets an invalid reading, not a crash.
  if (config_.read_dropout_probability > 0.0 &&
      dropout_rng_.bernoulli(config_.read_dropout_probability)) {
    OdometerReading r;
    r.degradation_estimate = std::nan("");
    r.valid = false;
    return r;
  }

  OdometerReading r;
  r.stressed_hz =
      counter_stressed_.measure(stressed_.frequency_hz(config_.read_vdd_v, temp))
          .frequency_hz;
  r.reference_hz =
      counter_reference_
          .measure(reference_.frequency_hz(config_.read_vdd_v, temp))
          .frequency_hz;
  // Differential readout: the mismatch-calibrated ratio isolates aging of
  // the stressed mirror relative to the protected reference.
  const double ratio = r.stressed_hz / r.reference_hz;
  r.degradation_estimate = 1.0 - ratio / calibration_ratio_;
  return r;
}

double SiliconOdometer::true_degradation(Kelvin temp) const {
  return 1.0 - stressed_.frequency_hz(config_.read_vdd_v, temp) /
                   fresh_stressed_hz_;
}

}  // namespace ash::fpga
