#include "ash/fpga/lut.h"

#include <algorithm>
#include <stdexcept>

#include "ash/util/random.h"

namespace ash::fpga {

namespace {

/// Fresh segment delays at nominal supply: two pass segments, two buffer
/// stages — 1.2 ns per LUT; the routing block adds 0.8 ns for the paper's
/// ~2 ns/stage, 75-stage, ~3.3 MHz ring oscillator.
constexpr Seconds kPassDelay{0.25e-9};
constexpr Seconds kBufferDelay{0.35e-9};

TransistorSpec spec_for(int index) {
  switch (index) {
    case kM1: return {"M1", DeviceType::kNmos, kPassDelay};
    case kM2: return {"M2", DeviceType::kNmos, kPassDelay};
    case kM3: return {"M3", DeviceType::kNmos, kPassDelay};
    case kM4: return {"M4", DeviceType::kNmos, kPassDelay};
    case kM5: return {"M5", DeviceType::kNmos, kPassDelay};
    case kM6: return {"M6", DeviceType::kNmos, kPassDelay};
    case kM7: return {"M7", DeviceType::kNmos, kBufferDelay};
    case kM8: return {"M8", DeviceType::kPmos, kBufferDelay};
    case kM9: return {"M9", DeviceType::kNmos, kBufferDelay};
    case kM10: return {"M10", DeviceType::kPmos, kBufferDelay};
    default: return {"?", DeviceType::kNmos, Seconds{0.0}};
  }
}

}  // namespace

PassTransistorLut2::PassTransistorLut2(LutConfig config, double delay_scale,
                                       const bti::TdParameters& params,
                                       std::uint64_t seed,
                                       double pbti_amplitude_ratio) {
  config_ = config;
  if (pbti_amplitude_ratio <= 0.0) {
    throw std::invalid_argument(
        "PassTransistorLut2: pbti_amplitude_ratio must be positive");
  }
  devices_.reserve(kLutDeviceCount);
  for (int i = 0; i < kLutDeviceCount; ++i) {
    const TransistorSpec spec = spec_for(i);
    devices_.emplace_back(
        spec, delay_scale,
        td_for_device(spec.type, params, pbti_amplitude_ratio),
        derive_seed(seed, static_cast<std::uint64_t>(i)));
  }
}

bool PassTransistorLut2::evaluate(bool in0, bool in1) const {
  return config_[static_cast<std::size_t>(2 * (in1 ? 1 : 0) + (in0 ? 1 : 0))];
}

std::vector<int> PassTransistorLut2::stressed_devices(bool in0,
                                                      bool in1) const {
  std::vector<int> out;
  // Branch node values: what each conducting level-1 device delivers.
  const bool nb = in0 ? config_[3] : config_[2];
  const bool na = in0 ? config_[1] : config_[0];
  // Level-1 pass devices: gate high AND passing logic 0.
  if (in0 && !config_[3]) out.push_back(kM1);
  if (!in0 && !config_[2]) out.push_back(kM2);
  if (in0 && !config_[1]) out.push_back(kM3);
  if (!in0 && !config_[0]) out.push_back(kM4);
  // Level-2 pass devices.
  if (in1 && !nb) out.push_back(kM5);
  if (!in1 && !na) out.push_back(kM6);
  // Buffer stages: tree value t drives stage 1; !t drives stage 2.
  const bool t = evaluate(in0, in1);
  out.push_back(t ? kM7 : kM8);
  out.push_back(t ? kM10 : kM9);
  std::sort(out.begin(), out.end());
  return out;
}

std::array<int, 4> PassTransistorLut2::conducting_path(bool in0,
                                                       bool in1) const {
  const int l1 = in1 ? (in0 ? kM1 : kM2) : (in0 ? kM3 : kM4);
  const int l2 = in1 ? kM5 : kM6;
  const bool t = evaluate(in0, in1);
  // Stage 1 output is !t: driven high by the PMOS when t = 0... the driving
  // (ON) device of an inverter is the one whose input turns it on.
  const int stage1 = t ? kM7 : kM8;
  const int stage2 = t ? kM10 : kM9;
  return {l1, l2, stage1, stage2};
}

std::vector<int> PassTransistorLut2::stressed_on_poi(bool in0,
                                                     bool in1) const {
  const auto stressed = stressed_devices(in0, in1);
  const auto path = conducting_path(in0, in1);
  std::vector<int> out;
  for (int d : stressed) {
    if (std::find(path.begin(), path.end(), d) != path.end()) {
      out.push_back(d);
    }
  }
  return out;
}

double PassTransistorLut2::path_delay(bool in0, bool in1,
                                      const DelayParams& dp, Volts vdd,
                                      Kelvin temp) const {

  const auto path = conducting_path(in0, in1);
  std::uint64_t stamp = 0;
  for (int idx : path) {
    stamp += devices_[static_cast<std::size_t>(idx)].state_version();
  }
  PathDelayCache& cache =
      path_cache_[static_cast<std::size_t>(2 * (in1 ? 1 : 0) + (in0 ? 1 : 0))];
  if (cache.matches(dp, vdd, temp, stamp)) return cache.delay_s.value();

  double total = 0.0;
  for (int idx : path) {
    const Transistor& d = devices_[static_cast<std::size_t>(idx)];
    total += segment_delay(dp, d.fresh_delay_s(), Volts{d.delta_vth()}, vdd,
                           temp);
  }
  cache.store(dp, vdd, temp, stamp, Seconds{total});
  return total;
}

void PassTransistorLut2::age_static(bool in0, bool in1,
                                    const bti::OperatingCondition& env,
                                    Seconds dt) {
  const auto stressed = stressed_devices(in0, in1);
  bti::OperatingCondition anneal = env;
  anneal.voltage_v = Volts{0.0};
  anneal.gate_stress_duty = 0.0;
  for (int i = 0; i < kLutDeviceCount; ++i) {
    const bool is_stressed =
        std::find(stressed.begin(), stressed.end(), i) != stressed.end();
    devices_[static_cast<std::size_t>(i)].evolve(is_stressed ? env : anneal,
                                                 dt);
  }
}

void PassTransistorLut2::age_toggling(const bti::OperatingCondition& env,
                                      Seconds dt) {
  for (auto& d : devices_) d.evolve(env, dt);
}

void PassTransistorLut2::age_sleep(const bti::OperatingCondition& env,
                                   Seconds dt) {
  for (auto& d : devices_) d.evolve(env, dt);
}

double PassTransistorLut2::max_delta_vth() const {
  double worst = 0.0;
  for (const auto& d : devices_) worst = std::max(worst, d.delta_vth());
  return worst;
}

}  // namespace ash::fpga
