#include "ash/fpga/fabric.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "ash/util/random.h"

namespace ash::fpga {

Fabric::Fabric(Netlist netlist, const FabricConfig& config)
    : netlist_(std::move(netlist)), config_(config) {
  netlist_.validate();
  topo_ = netlist_.topological_order();

  Rng mismatch_rng(derive_seed(config_.seed, 0x515));
  luts_.reserve(netlist_.nodes.size());
  routings_.reserve(netlist_.nodes.size());
  for (std::size_t i = 0; i < netlist_.nodes.size(); ++i) {
    const auto& node = netlist_.nodes[i];
    const double scale =
        std::exp(mismatch_rng.normal(0.0, config_.mismatch_sigma));
    const std::uint64_t node_seed =
        derive_seed(config_.seed, static_cast<std::uint64_t>(i) + 1);
    luts_.emplace_back(node.config, scale, config_.td,
                       derive_seed(node_seed, 0),
                       config_.pbti_amplitude_ratio);
    routings_.emplace_back(scale, config_.td, derive_seed(node_seed, 1),
                           config_.pbti_amplitude_ratio);
    instance_index_[node.name] = i;
  }
}

std::size_t Fabric::index_of(const std::string& instance) const {
  const auto it = instance_index_.find(instance);
  if (it == instance_index_.end()) {
    throw std::out_of_range("Fabric: unknown instance '" + instance + "'");
  }
  return it->second;
}

const PassTransistorLut2& Fabric::lut_of(const std::string& instance) const {
  return luts_[index_of(instance)];
}

const RoutingBlock& Fabric::routing_of(const std::string& instance) const {
  return routings_[index_of(instance)];
}

NetValues Fabric::evaluate(const NetValues& primary_inputs) const {
  NetValues values;
  for (const auto& pi : netlist_.primary_inputs) {
    const auto it = primary_inputs.find(pi);
    if (it == primary_inputs.end()) {
      throw std::invalid_argument("Fabric::evaluate: missing input '" + pi +
                                  "'");
    }
    values[pi] = it->second;
  }
  for (std::size_t idx : topo_) {
    const auto& node = netlist_.nodes[idx];
    const bool in0 = values.at(node.inputs[0]);
    const bool in1 = values.at(node.inputs[1]);
    values[node.output] = luts_[idx].evaluate(in0, in1);
  }
  return values;
}

void Fabric::age_static(const NetValues& primary_inputs,
                        const bti::OperatingCondition& env, Seconds dt) {
  const NetValues values = evaluate(primary_inputs);
  for (std::size_t idx : topo_) {
    const auto& node = netlist_.nodes[idx];
    const bool in0 = values.at(node.inputs[0]);
    const bool in1 = values.at(node.inputs[1]);
    luts_[idx].age_static(in0, in1, env, dt);
    routings_[idx].age_static(values.at(node.output), env, dt);
  }
}

void Fabric::age_toggling(const bti::OperatingCondition& env, Seconds dt) {
  for (std::size_t i = 0; i < luts_.size(); ++i) {
    luts_[i].age_toggling(env, dt);
    routings_[i].age_toggling(env, dt);
  }
}

NetProbabilities Fabric::propagate_probabilities(
    const NetProbabilities& primary_input_probs) const {
  NetProbabilities p;
  for (const auto& pi : netlist_.primary_inputs) {
    const auto it = primary_input_probs.find(pi);
    if (it == primary_input_probs.end()) {
      throw std::invalid_argument(
          "Fabric::propagate_probabilities: missing input '" + pi + "'");
    }
    if (it->second < 0.0 || it->second > 1.0) {
      throw std::invalid_argument(
          "Fabric::propagate_probabilities: probability out of range for '" +
          pi + "'");
    }
    p[pi] = it->second;
  }
  for (std::size_t idx : topo_) {
    const auto& node = netlist_.nodes[idx];
    const double p0 = p.at(node.inputs[0]);
    const double p1 = p.at(node.inputs[1]);
    // Exact over the LUT's truth table under the independent-signal
    // approximation.
    double p_out = 0.0;
    for (int in1 = 0; in1 <= 1; ++in1) {
      for (int in0 = 0; in0 <= 1; ++in0) {
        if (!luts_[idx].evaluate(in0 != 0, in1 != 0)) continue;
        p_out += (in0 != 0 ? p0 : 1.0 - p0) * (in1 != 0 ? p1 : 1.0 - p1);
      }
    }
    p[node.output] = p_out;
  }
  return p;
}

void Fabric::age_probabilistic(const NetProbabilities& primary_input_probs,
                               const bti::OperatingCondition& env,
                               Seconds dt) {
  const NetProbabilities p = propagate_probabilities(primary_input_probs);
  for (std::size_t idx : topo_) {
    const auto& node = netlist_.nodes[idx];
    const double p0 = p.at(node.inputs[0]);
    const double p1 = p.at(node.inputs[1]);

    // Per-device stress probability: sum the input-combination weights in
    // which the bias analysis marks the device stressed.
    double stress_prob[kLutDeviceCount] = {};
    for (int in1 = 0; in1 <= 1; ++in1) {
      for (int in0 = 0; in0 <= 1; ++in0) {
        const double w =
            (in0 != 0 ? p0 : 1.0 - p0) * (in1 != 0 ? p1 : 1.0 - p1);
        if (w == 0.0) continue;
        for (int d : luts_[idx].stressed_devices(in0 != 0, in1 != 0)) {
          stress_prob[d] += w;
        }
      }
    }
    for (int d = 0; d < kLutDeviceCount; ++d) {
      bti::OperatingCondition dev_env = env;
      dev_env.gate_stress_duty =
          env.gate_stress_duty * stress_prob[d];
      if (dev_env.gate_stress_duty == 0.0) dev_env.voltage_v = Volts{0.0};
      luts_[idx].device(d).evolve(dev_env, dt);
    }

    // Routing devices: stressed while the carried net sits at the value
    // that turns them on.
    const double p_net = p.at(node.output);
    const double routing_prob[kRoutingDeviceCount] = {
        p_net,        // R1N: input 1
        1.0 - p_net,  // R1P: input 0
        1.0 - p_net,  // R2N: input (!net) = 1
        p_net,        // R2P
    };
    for (int d = 0; d < kRoutingDeviceCount; ++d) {
      bti::OperatingCondition dev_env = env;
      dev_env.gate_stress_duty = env.gate_stress_duty * routing_prob[d];
      if (dev_env.gate_stress_duty == 0.0) dev_env.voltage_v = Volts{0.0};
      routings_[idx].device(d).evolve(dev_env, dt);
    }
  }
}

void Fabric::age_sleep(const bti::OperatingCondition& env, Seconds dt) {
  for (std::size_t i = 0; i < luts_.size(); ++i) {
    luts_[i].age_sleep(env, dt);
    routings_[i].age_sleep(env, dt);
  }
}

TimingReport Fabric::timing(Volts vdd, Kelvin temp) const {
  // Worst-case per-node delay over the four input combinations: a
  // vector-independent STA bound at the current aging state.
  std::vector<double> node_delay(luts_.size(), 0.0);
  for (std::size_t i = 0; i < luts_.size(); ++i) {
    double worst = 0.0;
    for (int in1 = 0; in1 <= 1; ++in1) {
      for (int in0 = 0; in0 <= 1; ++in0) {
        const bool out = luts_[i].evaluate(in0 != 0, in1 != 0);
        const double d =
            luts_[i].path_delay(in0 != 0, in1 != 0, config_.delay, vdd,
                                temp) +
            routings_[i].path_delay(out, config_.delay, vdd, temp);
        worst = std::max(worst, d);
      }
    }
    node_delay[i] = worst;
  }

  // Arrival-time propagation (primary inputs arrive at t = 0).
  std::unordered_map<std::string, double> arrival;
  std::unordered_map<std::string, std::size_t> producer;
  for (const auto& pi : netlist_.primary_inputs) arrival[pi] = 0.0;
  for (std::size_t idx : topo_) {
    const auto& node = netlist_.nodes[idx];
    const double in_arrival = std::max(arrival.at(node.inputs[0]),
                                       arrival.at(node.inputs[1]));
    arrival[node.output] = in_arrival + node_delay[idx];
    producer[node.output] = idx;
  }

  TimingReport report;
  for (const auto& po : netlist_.primary_outputs) {
    report.arrival_s[po] = arrival.at(po);
    if (Seconds{arrival.at(po)} >= report.worst_arrival_s) {
      report.worst_arrival_s = Seconds{arrival.at(po)};
      report.critical_output = po;
    }
  }

  // Backtrace the critical path: at each node follow the later input.
  std::string net = report.critical_output;
  while (producer.find(net) != producer.end()) {
    const std::size_t idx = producer.at(net);
    const auto& node = netlist_.nodes[idx];
    report.critical_path.push_back(node.name);
    net = arrival.at(node.inputs[0]) >= arrival.at(node.inputs[1])
              ? node.inputs[0]
              : node.inputs[1];
  }
  std::reverse(report.critical_path.begin(), report.critical_path.end());
  return report;
}

}  // namespace ash::fpga
