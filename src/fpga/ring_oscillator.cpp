#include "ash/fpga/ring_oscillator.h"

#include <stdexcept>

#include "ash/obs/profile.h"
#include "ash/util/random.h"

namespace ash::fpga {

RingOscillator::RingOscillator(int stages,
                               const std::vector<double>& delay_scales,
                               const DelayParams& delay_params,
                               const bti::TdParameters& td_params,
                               std::uint64_t seed,
                               double pbti_amplitude_ratio)
    : delay_params_(delay_params) {
  if (stages < 3 || stages % 2 == 0) {
    throw std::invalid_argument(
        "RingOscillator: stage count must be odd and >= 3");
  }
  if (delay_scales.size() != static_cast<std::size_t>(stages)) {
    throw std::invalid_argument(
        "RingOscillator: one delay scale per stage required");
  }
  stages_.reserve(static_cast<std::size_t>(stages));
  for (int i = 0; i < stages; ++i) {
    const std::uint64_t stage_seed =
        derive_seed(seed, static_cast<std::uint64_t>(i));
    stages_.push_back(RoStage{
        PassTransistorLut2(inverter_config(),
                           delay_scales[static_cast<std::size_t>(i)],
                           td_params, derive_seed(stage_seed, 0),
                           pbti_amplitude_ratio),
        RoutingBlock(delay_scales[static_cast<std::size_t>(i)], td_params,
                     derive_seed(stage_seed, 1), pbti_amplitude_ratio)});
  }
}

double RingOscillator::traversal_delay_s(bool in0_phase, double vdd_v,
                                         double temp_k) const {
  // As the edge propagates, consecutive stages see alternating input
  // values; `in0_phase` fixes the value at stage 0.
  double total = 0.0;
  bool in0 = in0_phase;
  for (const auto& s : stages_) {
    total += s.lut.path_delay(in0, /*in1=*/true, delay_params_, vdd_v, temp_k);
    const bool out = s.lut.evaluate(in0, true);
    total += s.routing.path_delay(out, delay_params_, vdd_v, temp_k);
    in0 = out;
  }
  return total;
}

double RingOscillator::period_s(double vdd_v, double temp_k) const {
  const obs::ScopedKernelTimer timer(obs::Kernel::kRoDelayEval);
  return traversal_delay_s(false, vdd_v, temp_k) +
         traversal_delay_s(true, vdd_v, temp_k);
}

double RingOscillator::frequency_hz(double vdd_v, double temp_k) const {
  return 1.0 / period_s(vdd_v, temp_k);
}

void RingOscillator::evolve(RoMode mode, const bti::OperatingCondition& env,
                            double dt_s) {
  switch (mode) {
    case RoMode::kAcOscillating: {
      bti::OperatingCondition ac = env;
      if (ac.gate_stress_duty <= 0.0) ac.gate_stress_duty = 0.5;
      for (auto& s : stages_) {
        s.lut.age_toggling(ac, dt_s);
        s.routing.age_toggling(ac, dt_s);
      }
      break;
    }
    case RoMode::kDcFrozen: {
      bti::OperatingCondition dc = env;
      dc.gate_stress_duty = 1.0;
      for (int i = 0; i < stage_count(); ++i) {
        auto& s = stages_[static_cast<std::size_t>(i)];
        const bool in0 = dc_input_of_stage(i);
        s.lut.age_static(in0, /*in1=*/true, dc, dt_s);
        s.routing.age_static(s.lut.evaluate(in0, true), dc, dt_s);
      }
      break;
    }
    case RoMode::kSleep: {
      bti::OperatingCondition sleep = env;
      sleep.gate_stress_duty = 0.0;
      for (auto& s : stages_) {
        s.lut.age_sleep(sleep, dt_s);
        s.routing.age_sleep(sleep, dt_s);
      }
      break;
    }
  }
}

}  // namespace ash::fpga
