#include "ash/fpga/ring_oscillator.h"

#include <stdexcept>

#include "ash/obs/profile.h"
#include "ash/util/random.h"

namespace ash::fpga {

RingOscillator::RingOscillator(int stages,
                               const std::vector<double>& delay_scales,
                               const DelayParams& delay_params,
                               const bti::TdParameters& td_params,
                               std::uint64_t seed,
                               double pbti_amplitude_ratio)
    : delay_params_(delay_params) {
  if (stages < 3 || stages % 2 == 0) {
    throw std::invalid_argument(
        "RingOscillator: stage count must be odd and >= 3");
  }
  if (delay_scales.size() != static_cast<std::size_t>(stages)) {
    throw std::invalid_argument(
        "RingOscillator: one delay scale per stage required");
  }
  stages_.reserve(static_cast<std::size_t>(stages));
  for (int i = 0; i < stages; ++i) {
    const std::uint64_t stage_seed =
        derive_seed(seed, static_cast<std::uint64_t>(i));
    stages_.push_back(RoStage{
        PassTransistorLut2(inverter_config(),
                           delay_scales[static_cast<std::size_t>(i)],
                           td_params, derive_seed(stage_seed, 0),
                           pbti_amplitude_ratio),
        RoutingBlock(delay_scales[static_cast<std::size_t>(i)], td_params,
                     derive_seed(stage_seed, 1), pbti_amplitude_ratio)});
  }
}

Seconds RingOscillator::traversal_delay_s(bool in0_phase, Volts vdd,
                                          Kelvin temp) const {
  // As the edge propagates, consecutive stages see alternating input
  // values; `in0_phase` fixes the value at stage 0.
  double total = 0.0;
  bool in0 = in0_phase;
  for (const auto& s : stages_) {
    total += s.lut.path_delay(in0, /*in1=*/true, delay_params_, vdd, temp);
    const bool out = s.lut.evaluate(in0, true);
    total += s.routing.path_delay(out, delay_params_, vdd, temp);
    in0 = out;
  }
  return Seconds{total};
}

Seconds RingOscillator::period_s(Volts vdd, Kelvin temp) const {
  const obs::ScopedKernelTimer timer(obs::Kernel::kRoDelayEval);
  return traversal_delay_s(false, vdd, temp) +
         traversal_delay_s(true, vdd, temp);
}

Hertz RingOscillator::frequency_hz(Volts vdd, Kelvin temp) const {
  return units::frequency_of(period_s(vdd, temp));
}

void RingOscillator::evolve(RoMode mode, const bti::OperatingCondition& env,
                            Seconds dt) {
  switch (mode) {
    case RoMode::kAcOscillating: {
      bti::OperatingCondition ac = env;
      if (ac.gate_stress_duty <= 0.0) ac.gate_stress_duty = 0.5;
      for (auto& s : stages_) {
        s.lut.age_toggling(ac, dt);
        s.routing.age_toggling(ac, dt);
      }
      break;
    }
    case RoMode::kDcFrozen: {
      bti::OperatingCondition dc = env;
      dc.gate_stress_duty = 1.0;
      for (int i = 0; i < stage_count(); ++i) {
        auto& s = stages_[static_cast<std::size_t>(i)];
        const bool in0 = dc_input_of_stage(i);
        s.lut.age_static(in0, /*in1=*/true, dc, dt);
        s.routing.age_static(s.lut.evaluate(in0, true), dc, dt);
      }
      break;
    }
    case RoMode::kSleep: {
      bti::OperatingCondition sleep = env;
      sleep.gate_stress_duty = 0.0;
      for (auto& s : stages_) {
        s.lut.age_sleep(sleep, dt);
        s.routing.age_sleep(sleep, dt);
      }
      break;
    }
  }
}

}  // namespace ash::fpga
