#include "ash/fpga/chip.h"

#include <cmath>
#include <vector>

#include "ash/util/random.h"

namespace ash::fpga {

namespace {

double draw_corner(const ChipConfig& c) {
  Rng rng(derive_seed(c.seed, 0xC0));
  return std::exp(rng.normal(0.0, c.chip_corner_sigma));
}

std::vector<double> draw_stage_scales(const ChipConfig& c, double corner) {
  Rng rng(derive_seed(c.seed, 0x57));
  std::vector<double> scales;
  scales.reserve(static_cast<std::size_t>(c.ro_stages));
  for (int i = 0; i < c.ro_stages; ++i) {
    scales.push_back(corner * std::exp(rng.normal(0.0, c.stage_mismatch_sigma)));
  }
  return scales;
}

}  // namespace

FpgaChip::FpgaChip(const ChipConfig& config)
    : config_(config),
      corner_scale_(draw_corner(config)),
      ro_(config.ro_stages, draw_stage_scales(config, corner_scale_),
          config.delay, config.td, derive_seed(config.seed, 0xA6),
          config.pbti_amplitude_ratio) {}

}  // namespace ash::fpga
