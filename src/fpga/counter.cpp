#include "ash/fpga/counter.h"

#include <cmath>
#include <stdexcept>

namespace ash::fpga {

FrequencyCounter::FrequencyCounter(const CounterConfig& config, Rng rng)
    : config_(config), rng_(rng) {
  if (config_.f_ref_hz <= Hertz{0.0} || config_.gate_ref_periods <= 0 ||
      config_.bits <= 0 || config_.bits > 31 ||
      config_.noise_counts_sigma < 0.0) {
    throw std::invalid_argument("FrequencyCounter: bad configuration");
  }
}

Hertz FrequencyCounter::resolution_hz() const {
  return 2.0 * config_.f_ref_hz / static_cast<double>(config_.gate_ref_periods);
}

Hertz FrequencyCounter::max_unwrapped_frequency_hz() const {
  const double max_counts = std::pow(2.0, config_.bits) - 1.0;
  return max_counts * resolution_hz();
}

CounterReading FrequencyCounter::measure(Hertz true_frequency) {
  const double true_frequency_hz = true_frequency.value();
  if (true_frequency_hz <= 0.0) {
    throw std::invalid_argument("FrequencyCounter: non-positive frequency");
  }
  // Ideal accumulated count over the gate: f_osc/(2 f_ref) per ref period.
  const double gate_s =
      static_cast<double>(config_.gate_ref_periods) / config_.f_ref_hz.value();
  const double ideal = true_frequency_hz * gate_s / 2.0;
  const double noisy = ideal + rng_.normal(0.0, config_.noise_counts_sigma);
  const double quantized = std::max(0.0, std::floor(noisy + 0.5));

  CounterReading r;
  r.counts = quantized;
  const auto mask =
      (std::uint32_t{1} << static_cast<unsigned>(config_.bits)) - 1u;
  r.raw_counts = static_cast<std::uint32_t>(quantized) & mask;
  r.frequency_hz = Hertz{quantized / gate_s * 2.0};
  r.delay_s = r.frequency_hz > Hertz{0.0}
                  ? Seconds{1.0 / (2.0 * r.frequency_hz.value())}
                  : Seconds{0.0};
  return r;
}

}  // namespace ash::fpga
