#include "ash/fpga/netlist.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "ash/util/table.h"

namespace ash::fpga {

namespace {

[[noreturn]] void fail(const std::string& netlist, const std::string& what) {
  throw std::invalid_argument("Netlist '" + netlist + "': " + what);
}

}  // namespace

void Netlist::validate() const {
  std::unordered_set<std::string> driven;
  for (const auto& pi : primary_inputs) {
    if (pi.empty()) fail(name, "empty primary input name");
    if (!driven.insert(pi).second) fail(name, "duplicate net '" + pi + "'");
  }
  std::unordered_set<std::string> instance_names;
  for (const auto& node : nodes) {
    if (node.name.empty()) fail(name, "unnamed LUT instance");
    if (!instance_names.insert(node.name).second) {
      fail(name, "duplicate instance '" + node.name + "'");
    }
    if (node.output.empty()) {
      fail(name, "instance '" + node.name + "' drives no net");
    }
    if (!driven.insert(node.output).second) {
      fail(name, "net '" + node.output + "' driven more than once");
    }
  }
  for (const auto& node : nodes) {
    for (const auto& in : node.inputs) {
      if (driven.find(in) == driven.end()) {
        fail(name, "instance '" + node.name + "' reads undriven net '" + in +
                       "'");
      }
    }
  }
  if (primary_outputs.empty()) fail(name, "no primary outputs");
  for (const auto& po : primary_outputs) {
    if (driven.find(po) == driven.end()) {
      fail(name, "primary output '" + po + "' is undriven");
    }
  }
  topological_order();  // throws on cycles
}

std::vector<std::size_t> Netlist::topological_order() const {
  // Kahn's algorithm over LUT nodes; primary inputs have no producers.
  std::unordered_map<std::string, std::size_t> producer;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    producer[nodes[i].output] = i;
  }
  std::vector<int> pending(nodes.size(), 0);
  std::vector<std::vector<std::size_t>> users(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (const auto& in : nodes[i].inputs) {
      const auto it = producer.find(in);
      if (it != producer.end()) {
        ++pending[i];
        users[it->second].push_back(i);
      }
    }
  }
  std::vector<std::size_t> ready;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (pending[i] == 0) ready.push_back(i);
  }
  std::vector<std::size_t> order;
  order.reserve(nodes.size());
  for (std::size_t head = 0; head < ready.size(); ++head) {
    const std::size_t n = ready[head];
    order.push_back(n);
    for (std::size_t u : users[n]) {
      if (--pending[u] == 0) ready.push_back(u);
    }
  }
  if (order.size() != nodes.size()) {
    fail(name, "combinational cycle detected");
  }
  return order;
}

Netlist inverter_chain(int stages) {
  if (stages < 1) {
    throw std::invalid_argument("inverter_chain: need >= 1 stage");
  }
  Netlist nl;
  nl.name = "inverter_chain" + std::to_string(stages);
  nl.primary_inputs = {"in"};
  std::string prev = "in";
  for (int i = 0; i < stages; ++i) {
    LutNode node;
    node.name = "u" + std::to_string(i);
    node.config = lut_not_a();
    node.inputs = {prev, prev};
    node.output = i + 1 == stages ? "out" : "n" + std::to_string(i);
    prev = node.output;
    nl.nodes.push_back(std::move(node));
  }
  nl.primary_outputs = {"out"};
  return nl;
}

Netlist ripple_carry_adder(int bits) {
  if (bits < 1) {
    throw std::invalid_argument("ripple_carry_adder: need >= 1 bit");
  }
  Netlist nl;
  nl.name = "rca" + std::to_string(bits);
  nl.primary_inputs.push_back("cin");
  for (int i = 0; i < bits; ++i) {
    nl.primary_inputs.push_back(strformat("a%d", i));
    nl.primary_inputs.push_back(strformat("b%d", i));
  }
  std::string carry = "cin";
  for (int i = 0; i < bits; ++i) {
    const std::string a = strformat("a%d", i);
    const std::string b = strformat("b%d", i);
    const std::string axb = strformat("axb%d", i);
    const std::string sum = strformat("s%d", i);
    const std::string and1 = strformat("ab%d", i);
    const std::string and2 = strformat("pc%d", i);
    const std::string cout =
        i + 1 == bits ? std::string("cout") : strformat("c%d", i + 1);
    // Full adder from 2-input LUTs:
    //   axb = a ^ b;  s = axb ^ cin;  ab = a & b;  pc = axb & cin;
    //   cout = ab | pc.
    nl.nodes.push_back({strformat("fa%d_x1", i), lut_xor(), {a, b}, axb});
    nl.nodes.push_back({strformat("fa%d_x2", i), lut_xor(), {axb, carry}, sum});
    nl.nodes.push_back({strformat("fa%d_a1", i), lut_and(), {a, b}, and1});
    nl.nodes.push_back(
        {strformat("fa%d_a2", i), lut_and(), {axb, carry}, and2});
    nl.nodes.push_back(
        {strformat("fa%d_o1", i), lut_or(), {and1, and2}, cout});
    nl.primary_outputs.push_back(sum);
    carry = cout;
  }
  nl.primary_outputs.push_back("cout");
  return nl;
}

Netlist c17() {
  Netlist nl;
  nl.name = "c17";
  nl.primary_inputs = {"n1", "n2", "n3", "n6", "n7"};
  nl.nodes = {
      {"g10", lut_nand(), {"n1", "n3"}, "n10"},
      {"g11", lut_nand(), {"n3", "n6"}, "n11"},
      {"g16", lut_nand(), {"n2", "n11"}, "n16"},
      {"g19", lut_nand(), {"n11", "n7"}, "n19"},
      {"g22", lut_nand(), {"n10", "n16"}, "n22"},
      {"g23", lut_nand(), {"n16", "n19"}, "n23"},
  };
  nl.primary_outputs = {"n22", "n23"};
  return nl;
}

}  // namespace ash::fpga
