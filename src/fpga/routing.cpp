#include "ash/fpga/routing.h"

#include <stdexcept>

#include "ash/util/random.h"

namespace ash::fpga {

namespace {

/// 0.4 ns per restored interconnect segment: routing dominates LUT delay in
/// real FPGAs; together with the 1.2 ns LUT this gives ~2 ns per RO stage.
constexpr Seconds kRoutingDelay{0.4e-9};

TransistorSpec spec_for(int index) {
  switch (index) {
    case kR1N: return {"R1N", DeviceType::kNmos, kRoutingDelay};
    case kR1P: return {"R1P", DeviceType::kPmos, kRoutingDelay};
    case kR2N: return {"R2N", DeviceType::kNmos, kRoutingDelay};
    case kR2P: return {"R2P", DeviceType::kPmos, kRoutingDelay};
    default: return {"?", DeviceType::kNmos, Seconds{0.0}};
  }
}

}  // namespace

RoutingBlock::RoutingBlock(double delay_scale, const bti::TdParameters& params,
                           std::uint64_t seed, double pbti_amplitude_ratio) {
  if (pbti_amplitude_ratio <= 0.0) {
    throw std::invalid_argument(
        "RoutingBlock: pbti_amplitude_ratio must be positive");
  }
  devices_.reserve(kRoutingDeviceCount);
  for (int i = 0; i < kRoutingDeviceCount; ++i) {
    const TransistorSpec spec = spec_for(i);
    devices_.emplace_back(
        spec, delay_scale,
        td_for_device(spec.type, params, pbti_amplitude_ratio),
        derive_seed(seed, static_cast<std::uint64_t>(i)));
  }
}

std::array<int, 2> RoutingBlock::conducting_path(bool v) const {
  // Inverter 1 input = v: ON device is NMOS for 1, PMOS for 0.
  // Inverter 2 input = !v.
  return {v ? kR1N : kR1P, v ? kR2P : kR2N};
}

std::vector<int> RoutingBlock::stressed_devices(bool v) const {
  const auto path = conducting_path(v);
  return {path[0], path[1]};
}

double RoutingBlock::path_delay(bool v, const DelayParams& dp, Volts vdd,
                                Kelvin temp) const {

  const auto path = conducting_path(v);
  std::uint64_t stamp = 0;
  for (int idx : path) {
    stamp += devices_[static_cast<std::size_t>(idx)].state_version();
  }
  PathDelayCache& cache = path_cache_[v ? 1 : 0];
  if (cache.matches(dp, vdd, temp, stamp)) return cache.delay_s.value();

  double total = 0.0;
  for (int idx : path) {
    const Transistor& d = devices_[static_cast<std::size_t>(idx)];
    total += segment_delay(dp, d.fresh_delay_s(), Volts{d.delta_vth()}, vdd,
                           temp);
  }
  cache.store(dp, vdd, temp, stamp, Seconds{total});
  return total;
}

void RoutingBlock::age_static(bool v, const bti::OperatingCondition& env,
                              Seconds dt) {
  const auto stressed = stressed_devices(v);
  bti::OperatingCondition anneal = env;
  anneal.voltage_v = Volts{0.0};
  anneal.gate_stress_duty = 0.0;
  for (int i = 0; i < kRoutingDeviceCount; ++i) {
    const bool is_stressed = i == stressed[0] || i == stressed[1];
    devices_[static_cast<std::size_t>(i)].evolve(is_stressed ? env : anneal,
                                                 dt);
  }
}

void RoutingBlock::age_toggling(const bti::OperatingCondition& env,
                                Seconds dt) {
  for (auto& d : devices_) d.evolve(env, dt);
}

void RoutingBlock::age_sleep(const bti::OperatingCondition& env, Seconds dt) {
  for (auto& d : devices_) d.evolve(env, dt);
}

}  // namespace ash::fpga
