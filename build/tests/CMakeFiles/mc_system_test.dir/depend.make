# Empty dependencies file for mc_system_test.
# This may be replaced when dependencies are built.
