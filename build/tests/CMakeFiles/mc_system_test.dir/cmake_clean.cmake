file(REMOVE_RECURSE
  "CMakeFiles/mc_system_test.dir/mc/system_test.cpp.o"
  "CMakeFiles/mc_system_test.dir/mc/system_test.cpp.o.d"
  "mc_system_test"
  "mc_system_test.pdb"
  "mc_system_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
