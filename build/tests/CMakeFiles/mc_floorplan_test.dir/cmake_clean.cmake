file(REMOVE_RECURSE
  "CMakeFiles/mc_floorplan_test.dir/mc/floorplan_test.cpp.o"
  "CMakeFiles/mc_floorplan_test.dir/mc/floorplan_test.cpp.o.d"
  "mc_floorplan_test"
  "mc_floorplan_test.pdb"
  "mc_floorplan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_floorplan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
