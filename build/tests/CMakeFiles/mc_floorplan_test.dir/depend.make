# Empty dependencies file for mc_floorplan_test.
# This may be replaced when dependencies are built.
