file(REMOVE_RECURSE
  "CMakeFiles/tb_data_log_test.dir/tb/data_log_test.cpp.o"
  "CMakeFiles/tb_data_log_test.dir/tb/data_log_test.cpp.o.d"
  "tb_data_log_test"
  "tb_data_log_test.pdb"
  "tb_data_log_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tb_data_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
