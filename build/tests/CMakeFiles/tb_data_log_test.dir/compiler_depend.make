# Empty compiler generated dependencies file for tb_data_log_test.
# This may be replaced when dependencies are built.
