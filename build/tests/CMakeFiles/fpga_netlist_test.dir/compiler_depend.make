# Empty compiler generated dependencies file for fpga_netlist_test.
# This may be replaced when dependencies are built.
