file(REMOVE_RECURSE
  "CMakeFiles/fpga_netlist_test.dir/fpga/netlist_test.cpp.o"
  "CMakeFiles/fpga_netlist_test.dir/fpga/netlist_test.cpp.o.d"
  "fpga_netlist_test"
  "fpga_netlist_test.pdb"
  "fpga_netlist_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpga_netlist_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
