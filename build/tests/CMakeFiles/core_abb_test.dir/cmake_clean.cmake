file(REMOVE_RECURSE
  "CMakeFiles/core_abb_test.dir/core/abb_test.cpp.o"
  "CMakeFiles/core_abb_test.dir/core/abb_test.cpp.o.d"
  "core_abb_test"
  "core_abb_test.pdb"
  "core_abb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_abb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
