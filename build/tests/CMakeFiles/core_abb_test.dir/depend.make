# Empty dependencies file for core_abb_test.
# This may be replaced when dependencies are built.
