file(REMOVE_RECURSE
  "CMakeFiles/fpga_fabric_test.dir/fpga/fabric_test.cpp.o"
  "CMakeFiles/fpga_fabric_test.dir/fpga/fabric_test.cpp.o.d"
  "fpga_fabric_test"
  "fpga_fabric_test.pdb"
  "fpga_fabric_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpga_fabric_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
