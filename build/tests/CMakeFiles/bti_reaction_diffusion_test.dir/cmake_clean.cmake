file(REMOVE_RECURSE
  "CMakeFiles/bti_reaction_diffusion_test.dir/bti/reaction_diffusion_test.cpp.o"
  "CMakeFiles/bti_reaction_diffusion_test.dir/bti/reaction_diffusion_test.cpp.o.d"
  "bti_reaction_diffusion_test"
  "bti_reaction_diffusion_test.pdb"
  "bti_reaction_diffusion_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bti_reaction_diffusion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
