# Empty dependencies file for bti_reaction_diffusion_test.
# This may be replaced when dependencies are built.
