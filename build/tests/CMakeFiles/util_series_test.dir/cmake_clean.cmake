file(REMOVE_RECURSE
  "CMakeFiles/util_series_test.dir/util/series_test.cpp.o"
  "CMakeFiles/util_series_test.dir/util/series_test.cpp.o.d"
  "util_series_test"
  "util_series_test.pdb"
  "util_series_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_series_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
