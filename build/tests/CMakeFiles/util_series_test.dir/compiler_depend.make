# Empty compiler generated dependencies file for util_series_test.
# This may be replaced when dependencies are built.
