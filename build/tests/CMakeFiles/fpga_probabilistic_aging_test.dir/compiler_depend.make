# Empty compiler generated dependencies file for fpga_probabilistic_aging_test.
# This may be replaced when dependencies are built.
