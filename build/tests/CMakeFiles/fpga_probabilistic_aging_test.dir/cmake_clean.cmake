file(REMOVE_RECURSE
  "CMakeFiles/fpga_probabilistic_aging_test.dir/fpga/probabilistic_aging_test.cpp.o"
  "CMakeFiles/fpga_probabilistic_aging_test.dir/fpga/probabilistic_aging_test.cpp.o.d"
  "fpga_probabilistic_aging_test"
  "fpga_probabilistic_aging_test.pdb"
  "fpga_probabilistic_aging_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpga_probabilistic_aging_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
