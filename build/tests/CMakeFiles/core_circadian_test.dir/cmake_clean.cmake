file(REMOVE_RECURSE
  "CMakeFiles/core_circadian_test.dir/core/circadian_test.cpp.o"
  "CMakeFiles/core_circadian_test.dir/core/circadian_test.cpp.o.d"
  "core_circadian_test"
  "core_circadian_test.pdb"
  "core_circadian_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_circadian_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
