# Empty dependencies file for core_circadian_test.
# This may be replaced when dependencies are built.
