# Empty dependencies file for fpga_ring_oscillator_test.
# This may be replaced when dependencies are built.
