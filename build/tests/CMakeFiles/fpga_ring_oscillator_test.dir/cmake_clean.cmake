file(REMOVE_RECURSE
  "CMakeFiles/fpga_ring_oscillator_test.dir/fpga/ring_oscillator_test.cpp.o"
  "CMakeFiles/fpga_ring_oscillator_test.dir/fpga/ring_oscillator_test.cpp.o.d"
  "fpga_ring_oscillator_test"
  "fpga_ring_oscillator_test.pdb"
  "fpga_ring_oscillator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpga_ring_oscillator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
