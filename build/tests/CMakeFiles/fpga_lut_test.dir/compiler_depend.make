# Empty compiler generated dependencies file for fpga_lut_test.
# This may be replaced when dependencies are built.
