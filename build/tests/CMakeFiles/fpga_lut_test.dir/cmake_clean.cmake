file(REMOVE_RECURSE
  "CMakeFiles/fpga_lut_test.dir/fpga/lut_test.cpp.o"
  "CMakeFiles/fpga_lut_test.dir/fpga/lut_test.cpp.o.d"
  "fpga_lut_test"
  "fpga_lut_test.pdb"
  "fpga_lut_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpga_lut_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
