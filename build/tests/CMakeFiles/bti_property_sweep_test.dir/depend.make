# Empty dependencies file for bti_property_sweep_test.
# This may be replaced when dependencies are built.
