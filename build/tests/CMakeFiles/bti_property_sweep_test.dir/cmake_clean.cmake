file(REMOVE_RECURSE
  "CMakeFiles/bti_property_sweep_test.dir/bti/property_sweep_test.cpp.o"
  "CMakeFiles/bti_property_sweep_test.dir/bti/property_sweep_test.cpp.o.d"
  "bti_property_sweep_test"
  "bti_property_sweep_test.pdb"
  "bti_property_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bti_property_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
