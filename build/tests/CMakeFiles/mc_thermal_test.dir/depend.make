# Empty dependencies file for mc_thermal_test.
# This may be replaced when dependencies are built.
