file(REMOVE_RECURSE
  "CMakeFiles/mc_thermal_test.dir/mc/thermal_test.cpp.o"
  "CMakeFiles/mc_thermal_test.dir/mc/thermal_test.cpp.o.d"
  "mc_thermal_test"
  "mc_thermal_test.pdb"
  "mc_thermal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_thermal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
