file(REMOVE_RECURSE
  "CMakeFiles/fpga_routing_test.dir/fpga/routing_test.cpp.o"
  "CMakeFiles/fpga_routing_test.dir/fpga/routing_test.cpp.o.d"
  "fpga_routing_test"
  "fpga_routing_test.pdb"
  "fpga_routing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpga_routing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
