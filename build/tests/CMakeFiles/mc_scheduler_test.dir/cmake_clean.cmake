file(REMOVE_RECURSE
  "CMakeFiles/mc_scheduler_test.dir/mc/scheduler_test.cpp.o"
  "CMakeFiles/mc_scheduler_test.dir/mc/scheduler_test.cpp.o.d"
  "mc_scheduler_test"
  "mc_scheduler_test.pdb"
  "mc_scheduler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
