file(REMOVE_RECURSE
  "CMakeFiles/bti_trap_test.dir/bti/trap_test.cpp.o"
  "CMakeFiles/bti_trap_test.dir/bti/trap_test.cpp.o.d"
  "bti_trap_test"
  "bti_trap_test.pdb"
  "bti_trap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bti_trap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
