# Empty compiler generated dependencies file for bti_trap_test.
# This may be replaced when dependencies are built.
