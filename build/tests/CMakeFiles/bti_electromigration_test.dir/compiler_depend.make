# Empty compiler generated dependencies file for bti_electromigration_test.
# This may be replaced when dependencies are built.
