file(REMOVE_RECURSE
  "CMakeFiles/bti_electromigration_test.dir/bti/electromigration_test.cpp.o"
  "CMakeFiles/bti_electromigration_test.dir/bti/electromigration_test.cpp.o.d"
  "bti_electromigration_test"
  "bti_electromigration_test.pdb"
  "bti_electromigration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bti_electromigration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
