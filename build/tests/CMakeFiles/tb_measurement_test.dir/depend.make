# Empty dependencies file for tb_measurement_test.
# This may be replaced when dependencies are built.
