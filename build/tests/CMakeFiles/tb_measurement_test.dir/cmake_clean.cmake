file(REMOVE_RECURSE
  "CMakeFiles/tb_measurement_test.dir/tb/measurement_test.cpp.o"
  "CMakeFiles/tb_measurement_test.dir/tb/measurement_test.cpp.o.d"
  "tb_measurement_test"
  "tb_measurement_test.pdb"
  "tb_measurement_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tb_measurement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
