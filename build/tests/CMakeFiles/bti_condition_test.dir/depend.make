# Empty dependencies file for bti_condition_test.
# This may be replaced when dependencies are built.
