file(REMOVE_RECURSE
  "CMakeFiles/bti_condition_test.dir/bti/condition_test.cpp.o"
  "CMakeFiles/bti_condition_test.dir/bti/condition_test.cpp.o.d"
  "bti_condition_test"
  "bti_condition_test.pdb"
  "bti_condition_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bti_condition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
