file(REMOVE_RECURSE
  "CMakeFiles/bti_acceleration_test.dir/bti/acceleration_test.cpp.o"
  "CMakeFiles/bti_acceleration_test.dir/bti/acceleration_test.cpp.o.d"
  "bti_acceleration_test"
  "bti_acceleration_test.pdb"
  "bti_acceleration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bti_acceleration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
