# Empty dependencies file for bti_acceleration_test.
# This may be replaced when dependencies are built.
