# Empty dependencies file for integration_model_validation_test.
# This may be replaced when dependencies are built.
