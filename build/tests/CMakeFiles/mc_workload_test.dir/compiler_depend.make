# Empty compiler generated dependencies file for mc_workload_test.
# This may be replaced when dependencies are built.
