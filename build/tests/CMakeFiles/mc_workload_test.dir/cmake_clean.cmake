file(REMOVE_RECURSE
  "CMakeFiles/mc_workload_test.dir/mc/workload_test.cpp.o"
  "CMakeFiles/mc_workload_test.dir/mc/workload_test.cpp.o.d"
  "mc_workload_test"
  "mc_workload_test.pdb"
  "mc_workload_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_workload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
