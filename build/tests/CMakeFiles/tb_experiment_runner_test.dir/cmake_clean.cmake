file(REMOVE_RECURSE
  "CMakeFiles/tb_experiment_runner_test.dir/tb/experiment_runner_test.cpp.o"
  "CMakeFiles/tb_experiment_runner_test.dir/tb/experiment_runner_test.cpp.o.d"
  "tb_experiment_runner_test"
  "tb_experiment_runner_test.pdb"
  "tb_experiment_runner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tb_experiment_runner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
