# Empty dependencies file for tb_experiment_runner_test.
# This may be replaced when dependencies are built.
