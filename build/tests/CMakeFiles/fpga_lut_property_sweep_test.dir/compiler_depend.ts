# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fpga_lut_property_sweep_test.
