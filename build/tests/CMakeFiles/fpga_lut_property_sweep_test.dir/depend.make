# Empty dependencies file for fpga_lut_property_sweep_test.
# This may be replaced when dependencies are built.
