file(REMOVE_RECURSE
  "CMakeFiles/fpga_lut_property_sweep_test.dir/fpga/lut_property_sweep_test.cpp.o"
  "CMakeFiles/fpga_lut_property_sweep_test.dir/fpga/lut_property_sweep_test.cpp.o.d"
  "fpga_lut_property_sweep_test"
  "fpga_lut_property_sweep_test.pdb"
  "fpga_lut_property_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpga_lut_property_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
