file(REMOVE_RECURSE
  "CMakeFiles/bti_closed_form_test.dir/bti/closed_form_test.cpp.o"
  "CMakeFiles/bti_closed_form_test.dir/bti/closed_form_test.cpp.o.d"
  "bti_closed_form_test"
  "bti_closed_form_test.pdb"
  "bti_closed_form_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bti_closed_form_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
