# Empty dependencies file for bti_closed_form_test.
# This may be replaced when dependencies are built.
