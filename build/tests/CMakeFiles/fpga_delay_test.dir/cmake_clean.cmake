file(REMOVE_RECURSE
  "CMakeFiles/fpga_delay_test.dir/fpga/delay_test.cpp.o"
  "CMakeFiles/fpga_delay_test.dir/fpga/delay_test.cpp.o.d"
  "fpga_delay_test"
  "fpga_delay_test.pdb"
  "fpga_delay_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpga_delay_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
