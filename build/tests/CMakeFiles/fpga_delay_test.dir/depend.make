# Empty dependencies file for fpga_delay_test.
# This may be replaced when dependencies are built.
