file(REMOVE_RECURSE
  "CMakeFiles/fpga_checkpoint_test.dir/fpga/checkpoint_test.cpp.o"
  "CMakeFiles/fpga_checkpoint_test.dir/fpga/checkpoint_test.cpp.o.d"
  "fpga_checkpoint_test"
  "fpga_checkpoint_test.pdb"
  "fpga_checkpoint_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpga_checkpoint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
