# Empty dependencies file for fpga_checkpoint_test.
# This may be replaced when dependencies are built.
