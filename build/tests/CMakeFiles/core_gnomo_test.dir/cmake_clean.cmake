file(REMOVE_RECURSE
  "CMakeFiles/core_gnomo_test.dir/core/gnomo_test.cpp.o"
  "CMakeFiles/core_gnomo_test.dir/core/gnomo_test.cpp.o.d"
  "core_gnomo_test"
  "core_gnomo_test.pdb"
  "core_gnomo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_gnomo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
