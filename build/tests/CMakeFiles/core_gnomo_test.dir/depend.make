# Empty dependencies file for core_gnomo_test.
# This may be replaced when dependencies are built.
