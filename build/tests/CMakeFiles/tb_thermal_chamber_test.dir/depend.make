# Empty dependencies file for tb_thermal_chamber_test.
# This may be replaced when dependencies are built.
