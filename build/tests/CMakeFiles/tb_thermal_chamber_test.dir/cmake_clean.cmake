file(REMOVE_RECURSE
  "CMakeFiles/tb_thermal_chamber_test.dir/tb/thermal_chamber_test.cpp.o"
  "CMakeFiles/tb_thermal_chamber_test.dir/tb/thermal_chamber_test.cpp.o.d"
  "tb_thermal_chamber_test"
  "tb_thermal_chamber_test.pdb"
  "tb_thermal_chamber_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tb_thermal_chamber_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
