file(REMOVE_RECURSE
  "CMakeFiles/tb_power_supply_test.dir/tb/power_supply_test.cpp.o"
  "CMakeFiles/tb_power_supply_test.dir/tb/power_supply_test.cpp.o.d"
  "tb_power_supply_test"
  "tb_power_supply_test.pdb"
  "tb_power_supply_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tb_power_supply_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
