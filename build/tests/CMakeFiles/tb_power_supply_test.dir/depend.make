# Empty dependencies file for tb_power_supply_test.
# This may be replaced when dependencies are built.
