# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for tb_test_case_test.
