file(REMOVE_RECURSE
  "CMakeFiles/tb_test_case_test.dir/tb/test_case_test.cpp.o"
  "CMakeFiles/tb_test_case_test.dir/tb/test_case_test.cpp.o.d"
  "tb_test_case_test"
  "tb_test_case_test.pdb"
  "tb_test_case_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tb_test_case_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
