# Empty compiler generated dependencies file for tb_test_case_test.
# This may be replaced when dependencies are built.
