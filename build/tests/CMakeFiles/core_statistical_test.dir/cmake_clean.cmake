file(REMOVE_RECURSE
  "CMakeFiles/core_statistical_test.dir/core/statistical_test.cpp.o"
  "CMakeFiles/core_statistical_test.dir/core/statistical_test.cpp.o.d"
  "core_statistical_test"
  "core_statistical_test.pdb"
  "core_statistical_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_statistical_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
