# Empty compiler generated dependencies file for core_statistical_test.
# This may be replaced when dependencies are built.
