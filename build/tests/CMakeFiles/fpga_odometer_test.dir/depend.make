# Empty dependencies file for fpga_odometer_test.
# This may be replaced when dependencies are built.
