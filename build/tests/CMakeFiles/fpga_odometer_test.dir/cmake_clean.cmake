file(REMOVE_RECURSE
  "CMakeFiles/fpga_odometer_test.dir/fpga/odometer_test.cpp.o"
  "CMakeFiles/fpga_odometer_test.dir/fpga/odometer_test.cpp.o.d"
  "fpga_odometer_test"
  "fpga_odometer_test.pdb"
  "fpga_odometer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpga_odometer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
