# Empty compiler generated dependencies file for fpga_pbti_asymmetry_test.
# This may be replaced when dependencies are built.
