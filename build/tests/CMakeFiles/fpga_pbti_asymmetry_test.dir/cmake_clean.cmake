file(REMOVE_RECURSE
  "CMakeFiles/fpga_pbti_asymmetry_test.dir/fpga/pbti_asymmetry_test.cpp.o"
  "CMakeFiles/fpga_pbti_asymmetry_test.dir/fpga/pbti_asymmetry_test.cpp.o.d"
  "fpga_pbti_asymmetry_test"
  "fpga_pbti_asymmetry_test.pdb"
  "fpga_pbti_asymmetry_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpga_pbti_asymmetry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
