# Empty compiler generated dependencies file for fpga_chip_test.
# This may be replaced when dependencies are built.
