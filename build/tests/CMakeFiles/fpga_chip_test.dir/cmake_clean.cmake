file(REMOVE_RECURSE
  "CMakeFiles/fpga_chip_test.dir/fpga/chip_test.cpp.o"
  "CMakeFiles/fpga_chip_test.dir/fpga/chip_test.cpp.o.d"
  "fpga_chip_test"
  "fpga_chip_test.pdb"
  "fpga_chip_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpga_chip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
