file(REMOVE_RECURSE
  "CMakeFiles/fpga_counter_test.dir/fpga/counter_test.cpp.o"
  "CMakeFiles/fpga_counter_test.dir/fpga/counter_test.cpp.o.d"
  "fpga_counter_test"
  "fpga_counter_test.pdb"
  "fpga_counter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpga_counter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
