# Empty compiler generated dependencies file for fpga_counter_test.
# This may be replaced when dependencies are built.
