# Empty dependencies file for bti_ensemble_test.
# This may be replaced when dependencies are built.
