file(REMOVE_RECURSE
  "CMakeFiles/bti_ensemble_test.dir/bti/trap_ensemble_test.cpp.o"
  "CMakeFiles/bti_ensemble_test.dir/bti/trap_ensemble_test.cpp.o.d"
  "bti_ensemble_test"
  "bti_ensemble_test.pdb"
  "bti_ensemble_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bti_ensemble_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
