file(REMOVE_RECURSE
  "libash_fpga.a"
)
