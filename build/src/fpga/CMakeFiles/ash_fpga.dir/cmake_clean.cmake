file(REMOVE_RECURSE
  "CMakeFiles/ash_fpga.dir/checkpoint.cpp.o"
  "CMakeFiles/ash_fpga.dir/checkpoint.cpp.o.d"
  "CMakeFiles/ash_fpga.dir/chip.cpp.o"
  "CMakeFiles/ash_fpga.dir/chip.cpp.o.d"
  "CMakeFiles/ash_fpga.dir/counter.cpp.o"
  "CMakeFiles/ash_fpga.dir/counter.cpp.o.d"
  "CMakeFiles/ash_fpga.dir/fabric.cpp.o"
  "CMakeFiles/ash_fpga.dir/fabric.cpp.o.d"
  "CMakeFiles/ash_fpga.dir/lut.cpp.o"
  "CMakeFiles/ash_fpga.dir/lut.cpp.o.d"
  "CMakeFiles/ash_fpga.dir/netlist.cpp.o"
  "CMakeFiles/ash_fpga.dir/netlist.cpp.o.d"
  "CMakeFiles/ash_fpga.dir/odometer.cpp.o"
  "CMakeFiles/ash_fpga.dir/odometer.cpp.o.d"
  "CMakeFiles/ash_fpga.dir/ring_oscillator.cpp.o"
  "CMakeFiles/ash_fpga.dir/ring_oscillator.cpp.o.d"
  "CMakeFiles/ash_fpga.dir/routing.cpp.o"
  "CMakeFiles/ash_fpga.dir/routing.cpp.o.d"
  "libash_fpga.a"
  "libash_fpga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ash_fpga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
