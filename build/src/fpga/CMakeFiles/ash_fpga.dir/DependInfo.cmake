
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fpga/checkpoint.cpp" "src/fpga/CMakeFiles/ash_fpga.dir/checkpoint.cpp.o" "gcc" "src/fpga/CMakeFiles/ash_fpga.dir/checkpoint.cpp.o.d"
  "/root/repo/src/fpga/chip.cpp" "src/fpga/CMakeFiles/ash_fpga.dir/chip.cpp.o" "gcc" "src/fpga/CMakeFiles/ash_fpga.dir/chip.cpp.o.d"
  "/root/repo/src/fpga/counter.cpp" "src/fpga/CMakeFiles/ash_fpga.dir/counter.cpp.o" "gcc" "src/fpga/CMakeFiles/ash_fpga.dir/counter.cpp.o.d"
  "/root/repo/src/fpga/fabric.cpp" "src/fpga/CMakeFiles/ash_fpga.dir/fabric.cpp.o" "gcc" "src/fpga/CMakeFiles/ash_fpga.dir/fabric.cpp.o.d"
  "/root/repo/src/fpga/lut.cpp" "src/fpga/CMakeFiles/ash_fpga.dir/lut.cpp.o" "gcc" "src/fpga/CMakeFiles/ash_fpga.dir/lut.cpp.o.d"
  "/root/repo/src/fpga/netlist.cpp" "src/fpga/CMakeFiles/ash_fpga.dir/netlist.cpp.o" "gcc" "src/fpga/CMakeFiles/ash_fpga.dir/netlist.cpp.o.d"
  "/root/repo/src/fpga/odometer.cpp" "src/fpga/CMakeFiles/ash_fpga.dir/odometer.cpp.o" "gcc" "src/fpga/CMakeFiles/ash_fpga.dir/odometer.cpp.o.d"
  "/root/repo/src/fpga/ring_oscillator.cpp" "src/fpga/CMakeFiles/ash_fpga.dir/ring_oscillator.cpp.o" "gcc" "src/fpga/CMakeFiles/ash_fpga.dir/ring_oscillator.cpp.o.d"
  "/root/repo/src/fpga/routing.cpp" "src/fpga/CMakeFiles/ash_fpga.dir/routing.cpp.o" "gcc" "src/fpga/CMakeFiles/ash_fpga.dir/routing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bti/CMakeFiles/ash_bti.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ash_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
