# Empty compiler generated dependencies file for ash_fpga.
# This may be replaced when dependencies are built.
