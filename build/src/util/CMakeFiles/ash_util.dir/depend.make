# Empty dependencies file for ash_util.
# This may be replaced when dependencies are built.
