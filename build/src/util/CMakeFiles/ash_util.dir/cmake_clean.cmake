file(REMOVE_RECURSE
  "CMakeFiles/ash_util.dir/csv.cpp.o"
  "CMakeFiles/ash_util.dir/csv.cpp.o.d"
  "CMakeFiles/ash_util.dir/flags.cpp.o"
  "CMakeFiles/ash_util.dir/flags.cpp.o.d"
  "CMakeFiles/ash_util.dir/optimize.cpp.o"
  "CMakeFiles/ash_util.dir/optimize.cpp.o.d"
  "CMakeFiles/ash_util.dir/series.cpp.o"
  "CMakeFiles/ash_util.dir/series.cpp.o.d"
  "CMakeFiles/ash_util.dir/stats.cpp.o"
  "CMakeFiles/ash_util.dir/stats.cpp.o.d"
  "CMakeFiles/ash_util.dir/table.cpp.o"
  "CMakeFiles/ash_util.dir/table.cpp.o.d"
  "libash_util.a"
  "libash_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ash_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
