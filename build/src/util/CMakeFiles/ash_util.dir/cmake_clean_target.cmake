file(REMOVE_RECURSE
  "libash_util.a"
)
