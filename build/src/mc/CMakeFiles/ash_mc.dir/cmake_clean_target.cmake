file(REMOVE_RECURSE
  "libash_mc.a"
)
