# Empty dependencies file for ash_mc.
# This may be replaced when dependencies are built.
