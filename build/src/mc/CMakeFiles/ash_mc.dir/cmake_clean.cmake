file(REMOVE_RECURSE
  "CMakeFiles/ash_mc.dir/floorplan.cpp.o"
  "CMakeFiles/ash_mc.dir/floorplan.cpp.o.d"
  "CMakeFiles/ash_mc.dir/scheduler.cpp.o"
  "CMakeFiles/ash_mc.dir/scheduler.cpp.o.d"
  "CMakeFiles/ash_mc.dir/system.cpp.o"
  "CMakeFiles/ash_mc.dir/system.cpp.o.d"
  "CMakeFiles/ash_mc.dir/thermal.cpp.o"
  "CMakeFiles/ash_mc.dir/thermal.cpp.o.d"
  "libash_mc.a"
  "libash_mc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ash_mc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
