
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tb/data_log.cpp" "src/tb/CMakeFiles/ash_tb.dir/data_log.cpp.o" "gcc" "src/tb/CMakeFiles/ash_tb.dir/data_log.cpp.o.d"
  "/root/repo/src/tb/experiment_runner.cpp" "src/tb/CMakeFiles/ash_tb.dir/experiment_runner.cpp.o" "gcc" "src/tb/CMakeFiles/ash_tb.dir/experiment_runner.cpp.o.d"
  "/root/repo/src/tb/measurement.cpp" "src/tb/CMakeFiles/ash_tb.dir/measurement.cpp.o" "gcc" "src/tb/CMakeFiles/ash_tb.dir/measurement.cpp.o.d"
  "/root/repo/src/tb/power_supply.cpp" "src/tb/CMakeFiles/ash_tb.dir/power_supply.cpp.o" "gcc" "src/tb/CMakeFiles/ash_tb.dir/power_supply.cpp.o.d"
  "/root/repo/src/tb/test_case.cpp" "src/tb/CMakeFiles/ash_tb.dir/test_case.cpp.o" "gcc" "src/tb/CMakeFiles/ash_tb.dir/test_case.cpp.o.d"
  "/root/repo/src/tb/thermal_chamber.cpp" "src/tb/CMakeFiles/ash_tb.dir/thermal_chamber.cpp.o" "gcc" "src/tb/CMakeFiles/ash_tb.dir/thermal_chamber.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fpga/CMakeFiles/ash_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/bti/CMakeFiles/ash_bti.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ash_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
