file(REMOVE_RECURSE
  "CMakeFiles/ash_tb.dir/data_log.cpp.o"
  "CMakeFiles/ash_tb.dir/data_log.cpp.o.d"
  "CMakeFiles/ash_tb.dir/experiment_runner.cpp.o"
  "CMakeFiles/ash_tb.dir/experiment_runner.cpp.o.d"
  "CMakeFiles/ash_tb.dir/measurement.cpp.o"
  "CMakeFiles/ash_tb.dir/measurement.cpp.o.d"
  "CMakeFiles/ash_tb.dir/power_supply.cpp.o"
  "CMakeFiles/ash_tb.dir/power_supply.cpp.o.d"
  "CMakeFiles/ash_tb.dir/test_case.cpp.o"
  "CMakeFiles/ash_tb.dir/test_case.cpp.o.d"
  "CMakeFiles/ash_tb.dir/thermal_chamber.cpp.o"
  "CMakeFiles/ash_tb.dir/thermal_chamber.cpp.o.d"
  "libash_tb.a"
  "libash_tb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ash_tb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
