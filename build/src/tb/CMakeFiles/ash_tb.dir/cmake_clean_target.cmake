file(REMOVE_RECURSE
  "libash_tb.a"
)
