# Empty compiler generated dependencies file for ash_tb.
# This may be replaced when dependencies are built.
