file(REMOVE_RECURSE
  "CMakeFiles/ash_core.dir/abb.cpp.o"
  "CMakeFiles/ash_core.dir/abb.cpp.o.d"
  "CMakeFiles/ash_core.dir/circadian.cpp.o"
  "CMakeFiles/ash_core.dir/circadian.cpp.o.d"
  "CMakeFiles/ash_core.dir/gnomo.cpp.o"
  "CMakeFiles/ash_core.dir/gnomo.cpp.o.d"
  "CMakeFiles/ash_core.dir/lifetime.cpp.o"
  "CMakeFiles/ash_core.dir/lifetime.cpp.o.d"
  "CMakeFiles/ash_core.dir/metrics.cpp.o"
  "CMakeFiles/ash_core.dir/metrics.cpp.o.d"
  "CMakeFiles/ash_core.dir/model_fit.cpp.o"
  "CMakeFiles/ash_core.dir/model_fit.cpp.o.d"
  "CMakeFiles/ash_core.dir/planner.cpp.o"
  "CMakeFiles/ash_core.dir/planner.cpp.o.d"
  "CMakeFiles/ash_core.dir/statistical.cpp.o"
  "CMakeFiles/ash_core.dir/statistical.cpp.o.d"
  "libash_core.a"
  "libash_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ash_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
