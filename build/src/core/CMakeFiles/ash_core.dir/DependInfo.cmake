
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/abb.cpp" "src/core/CMakeFiles/ash_core.dir/abb.cpp.o" "gcc" "src/core/CMakeFiles/ash_core.dir/abb.cpp.o.d"
  "/root/repo/src/core/circadian.cpp" "src/core/CMakeFiles/ash_core.dir/circadian.cpp.o" "gcc" "src/core/CMakeFiles/ash_core.dir/circadian.cpp.o.d"
  "/root/repo/src/core/gnomo.cpp" "src/core/CMakeFiles/ash_core.dir/gnomo.cpp.o" "gcc" "src/core/CMakeFiles/ash_core.dir/gnomo.cpp.o.d"
  "/root/repo/src/core/lifetime.cpp" "src/core/CMakeFiles/ash_core.dir/lifetime.cpp.o" "gcc" "src/core/CMakeFiles/ash_core.dir/lifetime.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/core/CMakeFiles/ash_core.dir/metrics.cpp.o" "gcc" "src/core/CMakeFiles/ash_core.dir/metrics.cpp.o.d"
  "/root/repo/src/core/model_fit.cpp" "src/core/CMakeFiles/ash_core.dir/model_fit.cpp.o" "gcc" "src/core/CMakeFiles/ash_core.dir/model_fit.cpp.o.d"
  "/root/repo/src/core/planner.cpp" "src/core/CMakeFiles/ash_core.dir/planner.cpp.o" "gcc" "src/core/CMakeFiles/ash_core.dir/planner.cpp.o.d"
  "/root/repo/src/core/statistical.cpp" "src/core/CMakeFiles/ash_core.dir/statistical.cpp.o" "gcc" "src/core/CMakeFiles/ash_core.dir/statistical.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tb/CMakeFiles/ash_tb.dir/DependInfo.cmake"
  "/root/repo/build/src/fpga/CMakeFiles/ash_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/bti/CMakeFiles/ash_bti.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ash_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
