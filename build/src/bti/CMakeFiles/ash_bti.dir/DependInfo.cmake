
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bti/acceleration.cpp" "src/bti/CMakeFiles/ash_bti.dir/acceleration.cpp.o" "gcc" "src/bti/CMakeFiles/ash_bti.dir/acceleration.cpp.o.d"
  "/root/repo/src/bti/closed_form.cpp" "src/bti/CMakeFiles/ash_bti.dir/closed_form.cpp.o" "gcc" "src/bti/CMakeFiles/ash_bti.dir/closed_form.cpp.o.d"
  "/root/repo/src/bti/condition.cpp" "src/bti/CMakeFiles/ash_bti.dir/condition.cpp.o" "gcc" "src/bti/CMakeFiles/ash_bti.dir/condition.cpp.o.d"
  "/root/repo/src/bti/electromigration.cpp" "src/bti/CMakeFiles/ash_bti.dir/electromigration.cpp.o" "gcc" "src/bti/CMakeFiles/ash_bti.dir/electromigration.cpp.o.d"
  "/root/repo/src/bti/parameters.cpp" "src/bti/CMakeFiles/ash_bti.dir/parameters.cpp.o" "gcc" "src/bti/CMakeFiles/ash_bti.dir/parameters.cpp.o.d"
  "/root/repo/src/bti/reaction_diffusion.cpp" "src/bti/CMakeFiles/ash_bti.dir/reaction_diffusion.cpp.o" "gcc" "src/bti/CMakeFiles/ash_bti.dir/reaction_diffusion.cpp.o.d"
  "/root/repo/src/bti/trap_ensemble.cpp" "src/bti/CMakeFiles/ash_bti.dir/trap_ensemble.cpp.o" "gcc" "src/bti/CMakeFiles/ash_bti.dir/trap_ensemble.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ash_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
