# Empty compiler generated dependencies file for ash_bti.
# This may be replaced when dependencies are built.
