file(REMOVE_RECURSE
  "CMakeFiles/ash_bti.dir/acceleration.cpp.o"
  "CMakeFiles/ash_bti.dir/acceleration.cpp.o.d"
  "CMakeFiles/ash_bti.dir/closed_form.cpp.o"
  "CMakeFiles/ash_bti.dir/closed_form.cpp.o.d"
  "CMakeFiles/ash_bti.dir/condition.cpp.o"
  "CMakeFiles/ash_bti.dir/condition.cpp.o.d"
  "CMakeFiles/ash_bti.dir/electromigration.cpp.o"
  "CMakeFiles/ash_bti.dir/electromigration.cpp.o.d"
  "CMakeFiles/ash_bti.dir/parameters.cpp.o"
  "CMakeFiles/ash_bti.dir/parameters.cpp.o.d"
  "CMakeFiles/ash_bti.dir/reaction_diffusion.cpp.o"
  "CMakeFiles/ash_bti.dir/reaction_diffusion.cpp.o.d"
  "CMakeFiles/ash_bti.dir/trap_ensemble.cpp.o"
  "CMakeFiles/ash_bti.dir/trap_ensemble.cpp.o.d"
  "libash_bti.a"
  "libash_bti.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ash_bti.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
