file(REMOVE_RECURSE
  "libash_bti.a"
)
