file(REMOVE_RECURSE
  "CMakeFiles/multicore_circadian.dir/multicore_circadian.cpp.o"
  "CMakeFiles/multicore_circadian.dir/multicore_circadian.cpp.o.d"
  "multicore_circadian"
  "multicore_circadian.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multicore_circadian.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
