# Empty compiler generated dependencies file for multicore_circadian.
# This may be replaced when dependencies are built.
