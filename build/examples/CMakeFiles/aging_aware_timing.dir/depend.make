# Empty dependencies file for aging_aware_timing.
# This may be replaced when dependencies are built.
