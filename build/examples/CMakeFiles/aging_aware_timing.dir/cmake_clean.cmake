file(REMOVE_RECURSE
  "CMakeFiles/aging_aware_timing.dir/aging_aware_timing.cpp.o"
  "CMakeFiles/aging_aware_timing.dir/aging_aware_timing.cpp.o.d"
  "aging_aware_timing"
  "aging_aware_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aging_aware_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
