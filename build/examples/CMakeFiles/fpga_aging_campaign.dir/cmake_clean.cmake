file(REMOVE_RECURSE
  "CMakeFiles/fpga_aging_campaign.dir/fpga_aging_campaign.cpp.o"
  "CMakeFiles/fpga_aging_campaign.dir/fpga_aging_campaign.cpp.o.d"
  "fpga_aging_campaign"
  "fpga_aging_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpga_aging_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
