# Empty dependencies file for fpga_aging_campaign.
# This may be replaced when dependencies are built.
