# Empty dependencies file for recovery_policy_explorer.
# This may be replaced when dependencies are built.
