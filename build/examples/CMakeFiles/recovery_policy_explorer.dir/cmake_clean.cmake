file(REMOVE_RECURSE
  "CMakeFiles/recovery_policy_explorer.dir/recovery_policy_explorer.cpp.o"
  "CMakeFiles/recovery_policy_explorer.dir/recovery_policy_explorer.cpp.o.d"
  "recovery_policy_explorer"
  "recovery_policy_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recovery_policy_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
