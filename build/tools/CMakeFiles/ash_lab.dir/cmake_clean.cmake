file(REMOVE_RECURSE
  "CMakeFiles/ash_lab.dir/ash_lab.cpp.o"
  "CMakeFiles/ash_lab.dir/ash_lab.cpp.o.d"
  "ash_lab"
  "ash_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ash_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
