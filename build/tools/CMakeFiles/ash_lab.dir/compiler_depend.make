# Empty compiler generated dependencies file for ash_lab.
# This may be replaced when dependencies are built.
