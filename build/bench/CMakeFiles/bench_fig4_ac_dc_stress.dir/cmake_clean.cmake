file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_ac_dc_stress.dir/bench_fig4_ac_dc_stress.cpp.o"
  "CMakeFiles/bench_fig4_ac_dc_stress.dir/bench_fig4_ac_dc_stress.cpp.o.d"
  "bench_fig4_ac_dc_stress"
  "bench_fig4_ac_dc_stress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_ac_dc_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
