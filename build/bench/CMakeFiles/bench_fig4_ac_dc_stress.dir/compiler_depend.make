# Empty compiler generated dependencies file for bench_fig4_ac_dc_stress.
# This may be replaced when dependencies are built.
