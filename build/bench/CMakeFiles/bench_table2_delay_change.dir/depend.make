# Empty dependencies file for bench_table2_delay_change.
# This may be replaced when dependencies are built.
