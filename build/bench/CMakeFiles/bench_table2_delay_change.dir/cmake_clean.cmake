file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_delay_change.dir/bench_table2_delay_change.cpp.o"
  "CMakeFiles/bench_table2_delay_change.dir/bench_table2_delay_change.cpp.o.d"
  "bench_table2_delay_change"
  "bench_table2_delay_change.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_delay_change.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
