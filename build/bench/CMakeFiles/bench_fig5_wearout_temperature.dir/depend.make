# Empty dependencies file for bench_fig5_wearout_temperature.
# This may be replaced when dependencies are built.
