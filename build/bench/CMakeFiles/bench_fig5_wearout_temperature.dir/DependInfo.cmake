
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig5_wearout_temperature.cpp" "bench/CMakeFiles/bench_fig5_wearout_temperature.dir/bench_fig5_wearout_temperature.cpp.o" "gcc" "bench/CMakeFiles/bench_fig5_wearout_temperature.dir/bench_fig5_wearout_temperature.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/ash_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mc/CMakeFiles/ash_mc.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ash_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tb/CMakeFiles/ash_tb.dir/DependInfo.cmake"
  "/root/repo/build/src/fpga/CMakeFiles/ash_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/bti/CMakeFiles/ash_bti.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ash_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
