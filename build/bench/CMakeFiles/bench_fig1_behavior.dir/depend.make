# Empty dependencies file for bench_fig1_behavior.
# This may be replaced when dependencies are built.
