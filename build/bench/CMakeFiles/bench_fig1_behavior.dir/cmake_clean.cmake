file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_behavior.dir/bench_fig1_behavior.cpp.o"
  "CMakeFiles/bench_fig1_behavior.dir/bench_fig1_behavior.cpp.o.d"
  "bench_fig1_behavior"
  "bench_fig1_behavior.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_behavior.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
