# Empty dependencies file for bench_fig9_cyclic_rejuvenation.
# This may be replaced when dependencies are built.
