file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_cyclic_rejuvenation.dir/bench_fig9_cyclic_rejuvenation.cpp.o"
  "CMakeFiles/bench_fig9_cyclic_rejuvenation.dir/bench_fig9_cyclic_rejuvenation.cpp.o.d"
  "bench_fig9_cyclic_rejuvenation"
  "bench_fig9_cyclic_rejuvenation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_cyclic_rejuvenation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
