# Empty compiler generated dependencies file for bench_table4_margin_relaxed.
# This may be replaced when dependencies are built.
