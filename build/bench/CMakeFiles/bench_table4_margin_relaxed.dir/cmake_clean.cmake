file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_margin_relaxed.dir/bench_table4_margin_relaxed.cpp.o"
  "CMakeFiles/bench_table4_margin_relaxed.dir/bench_table4_margin_relaxed.cpp.o.d"
  "bench_table4_margin_relaxed"
  "bench_table4_margin_relaxed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_margin_relaxed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
