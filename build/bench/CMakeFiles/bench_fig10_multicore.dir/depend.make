# Empty dependencies file for bench_fig10_multicore.
# This may be replaced when dependencies are built.
