# Empty compiler generated dependencies file for bench_fig7_high_temperature.
# This may be replaced when dependencies are built.
