file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_high_temperature.dir/bench_fig7_high_temperature.cpp.o"
  "CMakeFiles/bench_fig7_high_temperature.dir/bench_fig7_high_temperature.cpp.o.d"
  "bench_fig7_high_temperature"
  "bench_fig7_high_temperature.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_high_temperature.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
