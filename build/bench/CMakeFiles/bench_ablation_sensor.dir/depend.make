# Empty dependencies file for bench_ablation_sensor.
# This may be replaced when dependencies are built.
