file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_sensor.dir/bench_ablation_sensor.cpp.o"
  "CMakeFiles/bench_ablation_sensor.dir/bench_ablation_sensor.cpp.o.d"
  "bench_ablation_sensor"
  "bench_ablation_sensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_sensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
