# Empty dependencies file for bench_ablation_pbti.
# This may be replaced when dependencies are built.
