file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_pbti.dir/bench_ablation_pbti.cpp.o"
  "CMakeFiles/bench_ablation_pbti.dir/bench_ablation_pbti.cpp.o.d"
  "bench_ablation_pbti"
  "bench_ablation_pbti.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pbti.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
