# Empty dependencies file for bench_table5_active_sleep_ratio.
# This may be replaced when dependencies are built.
