file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_abb.dir/bench_ablation_abb.cpp.o"
  "CMakeFiles/bench_ablation_abb.dir/bench_ablation_abb.cpp.o.d"
  "bench_ablation_abb"
  "bench_ablation_abb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_abb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
