# Empty compiler generated dependencies file for bench_ablation_abb.
# This may be replaced when dependencies are built.
