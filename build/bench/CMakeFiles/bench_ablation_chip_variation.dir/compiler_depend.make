# Empty compiler generated dependencies file for bench_ablation_chip_variation.
# This may be replaced when dependencies are built.
