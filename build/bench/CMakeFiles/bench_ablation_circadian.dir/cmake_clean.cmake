file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_circadian.dir/bench_ablation_circadian.cpp.o"
  "CMakeFiles/bench_ablation_circadian.dir/bench_ablation_circadian.cpp.o.d"
  "bench_ablation_circadian"
  "bench_ablation_circadian.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_circadian.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
