# Empty compiler generated dependencies file for bench_ablation_circadian.
# This may be replaced when dependencies are built.
