file(REMOVE_RECURSE
  "libash_bench_common.a"
)
