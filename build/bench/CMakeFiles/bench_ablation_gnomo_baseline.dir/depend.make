# Empty dependencies file for bench_ablation_gnomo_baseline.
# This may be replaced when dependencies are built.
