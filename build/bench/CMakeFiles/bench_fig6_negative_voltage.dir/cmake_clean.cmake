file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_negative_voltage.dir/bench_fig6_negative_voltage.cpp.o"
  "CMakeFiles/bench_fig6_negative_voltage.dir/bench_fig6_negative_voltage.cpp.o.d"
  "bench_fig6_negative_voltage"
  "bench_fig6_negative_voltage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_negative_voltage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
