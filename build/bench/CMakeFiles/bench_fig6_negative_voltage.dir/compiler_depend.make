# Empty compiler generated dependencies file for bench_fig6_negative_voltage.
# This may be replaced when dependencies are built.
