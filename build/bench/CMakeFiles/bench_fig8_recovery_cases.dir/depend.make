# Empty dependencies file for bench_fig8_recovery_cases.
# This may be replaced when dependencies are built.
