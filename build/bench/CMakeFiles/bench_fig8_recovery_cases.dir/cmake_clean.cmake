file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_recovery_cases.dir/bench_fig8_recovery_cases.cpp.o"
  "CMakeFiles/bench_fig8_recovery_cases.dir/bench_fig8_recovery_cases.cpp.o.d"
  "bench_fig8_recovery_cases"
  "bench_fig8_recovery_cases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_recovery_cases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
