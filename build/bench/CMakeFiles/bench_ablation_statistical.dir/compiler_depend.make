# Empty compiler generated dependencies file for bench_ablation_statistical.
# This may be replaced when dependencies are built.
