file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_statistical.dir/bench_ablation_statistical.cpp.o"
  "CMakeFiles/bench_ablation_statistical.dir/bench_ablation_statistical.cpp.o.d"
  "bench_ablation_statistical"
  "bench_ablation_statistical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_statistical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
