file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_em.dir/bench_ablation_em.cpp.o"
  "CMakeFiles/bench_ablation_em.dir/bench_ablation_em.cpp.o.d"
  "bench_ablation_em"
  "bench_ablation_em.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_em.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
