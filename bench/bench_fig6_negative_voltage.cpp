/// bench_fig6_negative_voltage — reproduces Figure 6 of the paper.
///
/// "Recover at (a) 20 degC (b) 110 degC": recovered delay (Eq. (16)) over
/// 6 h of sleep, comparing 0 V vs -0.3 V at each temperature, with the
/// fitted recovery model overlaid.  Shape: the negative rail accelerates
/// recovery markedly at both temperatures.

#include <cstdio>

#include "ash/core/metrics.h"
#include "ash/core/model_fit.h"
#include "ash/util/constants.h"
#include "ash/util/table.h"
#include "common.h"

namespace {

struct CaseData {
  const char* label;
  ash::Series rd_ns;        // recovered delay, measured
  ash::core::RecoveryFit fit;
  double damage_ns;         // DeltaTd(t1)
};

CaseData make_case(const ash::bench::Campaign& campaign, int chip,
                   const char* phase) {
  using namespace ash;
  const auto& run = campaign.chip(chip);
  CaseData c{phase, bench::recovered_delay_ns(run, phase), {}, 0.0};
  const Series delay = run.log.delay_series(phase);
  c.damage_ns = (delay.front().value - run.fresh_delay_s) * 1e9;
  const Series remaining =
      core::delay_change_series(delay, run.fresh_delay_s);
  const core::ModelFitter fitter;
  // Chip 4 stressed at 100 degC: convert to reference-equivalent time.
  const bti::ClosedFormModel prior_model(fitter.priors());
  const double afc =
      chip == 4 ? prior_model.capture_acceleration(Volts{1.2}, Kelvin{celsius(100.0)}) : 1.0;
  c.fit = fitter.fit_recovery(remaining, hours(24.0) * afc);
  return c;
}

void print_pane(const char* title, const CaseData& zero, const CaseData& neg) {
  using namespace ash;
  std::printf("--- %s ---\n", title);
  Table t({"time (h)", "0V meas (ns)", "0V model (ns)", "-0.3V meas (ns)",
           "-0.3V model (ns)"});
  for (double h : {0.0, 0.3, 1.0, 2.0, 4.0, 6.0}) {
    const double t2 = hours(h);
    const auto model_rd = [&](const CaseData& c) {
      return c.damage_ns * (1.0 - c.fit.remaining_fraction(t2));
    };
    t.add_row({fmt_fixed(h, 1), fmt_fixed(zero.rd_ns.at(t2), 2),
               fmt_fixed(model_rd(zero), 2), fmt_fixed(neg.rd_ns.at(t2), 2),
               fmt_fixed(model_rd(neg), 2)});
  }
  std::printf("%s\n", t.render().c_str());
}

}  // namespace

int main() {
  using namespace ash;
  bench::print_banner(
      "Figure 6 — recovery with negative voltage at (a) 20 degC (b) 110 degC",
      "-0.3 V markedly accelerates recovery at both temperatures");

  const auto campaign = bench::run_paper_campaign();
  const auto r20z = make_case(campaign, 2, "R20Z6");
  const auto r20n = make_case(campaign, 3, "AR20N6");
  const auto r110z = make_case(campaign, 4, "AR110Z6");
  const auto r110n = make_case(campaign, 5, "AR110N6");

  print_pane("(a) 20 degC", r20z, r20n);
  print_pane("(b) 110 degC", r110z, r110n);

  Table s({"case", "paper expectation", "recovered fraction", "model R^2"});
  const auto frac = [](const CaseData& c) {
    return c.rd_ns.back().value / c.damage_ns;
  };
  s.add_row({"R20Z6 (passive)", "clearly partial", fmt_percent(frac(r20z), 0),
             fmt_fixed(r20z.fit.r_squared, 3)});
  s.add_row({"AR20N6", "most of the damage", fmt_percent(frac(r20n), 0),
             fmt_fixed(r20n.fit.r_squared, 3)});
  s.add_row({"AR110Z6", "most of the damage", fmt_percent(frac(r110z), 0),
             fmt_fixed(r110z.fit.r_squared, 3)});
  s.add_row({"AR110N6", "fastest / deepest", fmt_percent(frac(r110n), 0),
             fmt_fixed(r110n.fit.r_squared, 3)});
  std::printf("%s\n", s.render().c_str());

  Table v({"comparison", "paper", "measured"});
  v.add_row({"-0.3V beats 0V at 20 degC", "yes",
             frac(r20n) > frac(r20z) ? "yes" : "NO"});
  v.add_row({"-0.3V beats 0V at 110 degC", "yes",
             r110n.rd_ns.at(hours(0.3)) >= r110z.rd_ns.at(hours(0.3)) - 0.05
                 ? "yes"
                 : "NO"});
  std::printf("%s\n", v.render().c_str());
  return 0;
}
