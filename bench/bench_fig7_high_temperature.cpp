/// bench_fig7_high_temperature — reproduces Figure 7 of the paper.
///
/// "Recover under (a) 0 V (b) -0.3 V": the same four recovery cases as
/// Fig. 6 re-sliced by supply rail, showing that high temperature
/// accelerates recovery at either rail.

#include <cstdio>

#include "ash/util/constants.h"
#include "ash/util/table.h"
#include "common.h"

int main() {
  using namespace ash;
  bench::print_banner(
      "Figure 7 — recovery at high temperature under (a) 0 V (b) -0.3 V",
      "110 degC recovers faster than 20 degC at either supply rail");

  const auto campaign = bench::run_paper_campaign();
  const auto rd_20z = bench::recovered_delay_ns(campaign.chip(2), "R20Z6");
  const auto rd_20n = bench::recovered_delay_ns(campaign.chip(3), "AR20N6");
  const auto rd_110z = bench::recovered_delay_ns(campaign.chip(4), "AR110Z6");
  const auto rd_110n = bench::recovered_delay_ns(campaign.chip(5), "AR110N6");

  std::printf("--- (a) 0 V ---\n");
  Table a({"time (h)", "20 degC (ns)", "110 degC (ns)"});
  for (double h : {0.0, 0.3, 1.0, 2.0, 4.0, 6.0}) {
    a.add_row({fmt_fixed(h, 1), fmt_fixed(rd_20z.at(hours(h)), 2),
               fmt_fixed(rd_110z.at(hours(h)), 2)});
  }
  std::printf("%s\n", a.render().c_str());

  std::printf("--- (b) -0.3 V ---\n");
  Table b({"time (h)", "20 degC (ns)", "110 degC (ns)"});
  for (double h : {0.0, 0.3, 1.0, 2.0, 4.0, 6.0}) {
    b.add_row({fmt_fixed(h, 1), fmt_fixed(rd_20n.at(hours(h)), 2),
               fmt_fixed(rd_110n.at(hours(h)), 2)});
  }
  std::printf("%s\n", b.render().c_str());

  // Compare early-time recovery speed (before saturation) — the paper's
  // "high temperature not only accelerates wearout, but also accelerates
  // recovery".
  Table s({"comparison (recovered @ 1 h)", "paper", "measured"});
  s.add_row({"110C vs 20C at 0 V", "faster",
             rd_110z.at(hours(1.0)) > rd_20z.at(hours(1.0)) ? "yes" : "NO"});
  s.add_row({"110C vs 20C at -0.3 V", "faster",
             rd_110n.at(hours(1.0)) > rd_20n.at(hours(1.0)) ? "yes" : "NO"});
  std::printf("%s\n", s.render().c_str());
  return 0;
}
