/// bench_ablation_statistical — population-level design margins.
///
/// Ref. [15] built the TD model for *statistical* aging prediction; design
/// margins are set for the p99 chip.  This ablation runs a 200-chip
/// population through each recovery policy and reports the percentile
/// margins — the number a product team actually signs off on.  The
/// self-healing payoff is largest exactly at the tail.

#include <cstdio>

#include "ash/core/statistical.h"
#include "ash/util/table.h"
#include "common.h"

int main() {
  using namespace ash;
  bench::print_banner(
      "Ablation K — statistical design margins over a 200-chip population",
      "healing compresses the tail, not just the mean");

  Table t({"policy", "p50 (mV)", "p95 (mV)", "p99 (mV)", "worst (mV)",
           "p99 margin saved"});
  double baseline_p99 = 0.0;
  for (const auto policy :
       {core::Policy::kNoRecovery, core::Policy::kPassiveSleep,
        core::Policy::kReactive, core::Policy::kProactive}) {
    core::PopulationConfig cfg;
    cfg.chips = 200;
    cfg.policy = policy;
    const auto r = core::simulate_population(cfg);
    if (policy == core::Policy::kNoRecovery) baseline_p99 = r.p99_v.value();
    t.add_row({to_string(policy), fmt_fixed(r.p50_v.value() * 1e3, 2),
               fmt_fixed(r.p95_v.value() * 1e3, 2), fmt_fixed(r.p99_v.value() * 1e3, 2),
               fmt_fixed(r.worst_v.value() * 1e3, 2),
               fmt_percent(1.0 - r.p99_v.value() / baseline_p99, 0)});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf(
      "reading: the proactive row is the paper's design-margin-relaxation\n"
      "argument restated at population scale — the guardband a designer\n"
      "must carry for the p99 chip shrinks by the 'p99 margin saved'\n"
      "column when scheduled deep rejuvenation is part of the system\n"
      "contract.  (At these generous 30 h cycles warm passive idle already\n"
      "heals most of the reversible damage — the deep-sleep knobs earn\n"
      "their keep when sleep windows are scarce; see ablations B and H.)\n");
  return 0;
}
