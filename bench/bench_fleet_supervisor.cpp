/// bench_fleet_supervisor — what process chaos costs and what it cannot
/// change.
///
/// Runs the same three-shard paper fleet (chips 1-3, 11-stage ROs) four
/// ways: undisturbed, under the kill plan, under the torn plan (kills +
/// snapshot corruption) and under the full plan (kills + corruption +
/// heartbeat stalls).  Each chaotic scenario restarts workers from the
/// durable checkpoint store, so the fleet report payload must stay
/// byte-identical to the undisturbed run; the table shows the supervision
/// cost (wall time, crashes, restarts, corrupt snapshots stepped over)
/// that buys that invariant.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "ash/fleet/fault.h"
#include "ash/fleet/supervisor.h"
#include "common.h"

namespace {

using namespace ash;

constexpr int kShards = 3;
constexpr int kStages = 11;
constexpr std::uint64_t kSeed = 7;

struct ScenarioRow {
  std::string name;
  double wall_ms = 0.0;
  fleet::FleetReport report;
};

ScenarioRow run_scenario(const std::string& name, const std::string& root) {
  const std::string dir = root + "/" + name;
  const std::string cmd = "mkdir -p '" + dir + "'";
  if (std::system(cmd.c_str()) != 0) {
    std::fprintf(stderr, "cannot create %s\n", dir.c_str());
    std::exit(1);
  }
  fleet::FleetConfig config;
  config.checkpoint_dir = dir;
  config.backoff_initial_ms = 1;
  config.backoff_max_ms = 20;
  config.chaos = fleet::FleetFaultPlan::by_name(name == "clean" ? "none"
                                                                : name);
  ScenarioRow row;
  row.name = name;
  fleet::FleetSupervisor supervisor(
      config, fleet::paper_fleet_shards(kShards, kSeed, kStages));
  const auto t0 = std::chrono::steady_clock::now();
  row.report = supervisor.run();
  row.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  return row;
}

}  // namespace

int main() {
  bench::print_banner(
      "fleet supervision under process chaos",
      "a killed-and-corrupted fleet converges to the undisturbed payload");

  char tmpl[] = "/tmp/ash_bench_fleet_XXXXXX";
  if (::mkdtemp(tmpl) == nullptr) {
    std::fprintf(stderr, "mkdtemp failed\n");
    return 1;
  }
  const std::string root = tmpl;

  const ScenarioRow clean = run_scenario("clean", root);
  const ScenarioRow rows[] = {
      run_scenario("kill", root),
      run_scenario("torn", root),
      run_scenario("full", root),
  };

  std::printf("\n%-8s %9s %8s %8s %9s %13s %11s %s\n", "scenario", "wall_ms",
              "crashes", "restarts", "timeouts", "corrupt_skips",
              "payload_crc", "vs clean");
  std::printf("%-8s %9.1f %8d %8d %9d %13d %11.8x %s\n", clean.name.c_str(),
              clean.wall_ms, clean.report.stats.worker_crashes,
              clean.report.stats.restarts,
              clean.report.stats.heartbeat_timeouts,
              clean.report.stats.corrupt_snapshots_skipped,
              clean.report.payload_crc(), "-");
  bool all_match = true;
  for (const auto& row : rows) {
    const bool match = row.report.payload() == clean.report.payload();
    all_match = all_match && match;
    std::printf("%-8s %9.1f %8d %8d %9d %13d %11.8x %s\n", row.name.c_str(),
                row.wall_ms, row.report.stats.worker_crashes,
                row.report.stats.restarts,
                row.report.stats.heartbeat_timeouts,
                row.report.stats.corrupt_snapshots_skipped,
                row.report.payload_crc(), match ? "IDENTICAL" : "DIVERGED");
  }

  const std::string cleanup = "rm -rf '" + root + "'";
  if (std::system(cleanup.c_str()) != 0) {
    std::fprintf(stderr, "cleanup of %s failed\n", root.c_str());
  }
  if (!all_match) {
    std::fprintf(stderr, "\nFAIL: a chaotic payload diverged from clean\n");
    return 1;
  }
  std::printf("\nall chaotic payloads byte-identical to the undisturbed run\n");
  return 0;
}
