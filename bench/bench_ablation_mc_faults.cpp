/// bench_ablation_mc_faults — the Fig. 10 study on a failing fleet.
///
/// The paper's multi-core argument assumes every core survives the
/// mission.  This ablation reruns the study under the representative
/// core-fault plan (permanent deaths, stuck rejuvenation rails, noisy and
/// dropping aging sensors) across a sweep of fault seeds, comparing:
///
///   * the heater-aware circadian policy wrapped in the reliability
///     manager (quarantine, failover, telemetry filtering);
///   * the all-active baseline behind the same manager;
///   * the circadian policy raw, with no reliability layer.
///
/// Claims measured: self-healing keeps extending lifetime when cores die
/// mid-mission (managed circadian outlives managed all-active on healthy
/// time-to-first-margin), and the manager converts faults into accounted
/// degradation instead of silently lost work.

#include <cstdio>

#include "ash/mc/reliability.h"
#include "ash/mc/system.h"
#include "ash/obs/metrics.h"
#include "ash/util/table.h"
#include "common.h"

namespace {

constexpr double kYearS = 365.25 * 86400.0;
constexpr double kDayS = 86400.0;
constexpr int kSeeds = 8;

struct Tally {
  double ttm_days_sum = 0.0;
  int censored = 0;
  int deaths = 0;
  double deficit_core_days_sum = 0.0;
  long lost_intervals = 0;
  int accounted = 0;
};

ash::mc::SystemConfig study_config() {
  ash::mc::SystemConfig cfg;
  cfg.horizon_s = ash::Seconds{2.0 * kYearS};
  // 8 mV rather than the ideal-study 9 mV: dead cores are dark silicon,
  // the fleet runs cooler, and even all-active survivors stay under 9 mV.
  cfg.margin_delta_vth_v = ash::Volts{8e-3};
  return cfg;
}

}  // namespace

int main() {
  using namespace ash;
  bench::print_banner(
      "Ablation — multi-core self-healing under core faults",
      "seed-swept core deaths, stuck rails and sensor corruption; the "
      "reliability manager turns faults into accounted degradation");

  const auto cfg = study_config();
  mc::ReliabilityConfig rel;
  rel.margin_delta_vth_v = cfg.margin_delta_vth_v;

  enum { kManagedCircadian, kManagedAllActive, kRawCircadian, kVariants };
  const char* labels[kVariants] = {"reliability(circadian)",
                                   "reliability(all-active)",
                                   "circadian (unmanaged)"};
  Tally tally[kVariants];
  mc::ReliabilityReport merged[kVariants];
  int circadian_outlives = 0;

  for (int trial = 0; trial < kSeeds; ++trial) {
    auto plan = mc::CoreFaultPlan::representative();
    plan.seed = derive_seed(plan.seed, static_cast<std::uint64_t>(trial));

    double ttm[kVariants] = {};
    for (int v = 0; v < kVariants; ++v) {
      mc::HeaterAwareCircadianScheduler circadian;
      mc::AllActiveScheduler all_active;
      mc::Scheduler* inner =
          v == kManagedAllActive ? static_cast<mc::Scheduler*>(&all_active)
                                 : static_cast<mc::Scheduler*>(&circadian);
      mc::ReliabilityReport report;
      mc::ReliabilityManager managed(*inner, rel, &report);
      mc::Scheduler* policy = v == kRawCircadian
                                  ? inner
                                  : static_cast<mc::Scheduler*>(&managed);
      const auto r = simulate_system(cfg, *policy, plan, &report);
      auto& t = tally[v];
      ttm[v] = r.time_to_first_margin_s.value();
      t.ttm_days_sum += r.time_to_first_margin_s.value() / kDayS;
      t.censored += r.margin_exceeded ? 0 : 1;
      t.deaths += report.permanent_deaths;
      t.deficit_core_days_sum += r.demand_deficit_core_s.value() / kDayS;
      t.lost_intervals += report.core_intervals_lost;
      t.accounted += report.accounted() ? 1 : 0;
      merged[v].merge(report);
    }
    if (ttm[kManagedCircadian] > ttm[kManagedAllActive]) ++circadian_outlives;
  }

  Table t({"policy", "healthy TTM (days, mean)", "censored",
           "core deaths", "deficit (core-days, mean)",
           "lost core-intervals", "report accounted"});
  for (int v = 0; v < kVariants; ++v) {
    const auto& y = tally[v];
    t.add_row({labels[v], fmt_fixed(y.ttm_days_sum / kSeeds, 0),
               strformat("%d/%d", y.censored, kSeeds),
               strformat("%d", y.deaths),
               fmt_fixed(y.deficit_core_days_sum / kSeeds, 1),
               strformat("%ld", y.lost_intervals),
               strformat("%d/%d", y.accounted, kSeeds)});
  }
  std::printf("%s\n", t.render().c_str());

  Table s({"check", "expected", "measured"});
  s.add_row({"managed circadian outlives managed all-active",
             "every fault seed",
             strformat("%d/%d seeds", circadian_outlives, kSeeds)});
  s.add_row({"manager accounts for every injected fault", "8/8 runs",
             strformat("%d+%d/%d", tally[kManagedCircadian].accounted,
                       tally[kManagedAllActive].accounted, 2 * kSeeds)});
  s.add_row(
      {"unmanaged fleet loses work to dead cores", "deficit >> managed",
       strformat("%.1f vs %.1f core-days",
                 tally[kRawCircadian].deficit_core_days_sum / kSeeds,
                 tally[kManagedCircadian].deficit_core_days_sum / kSeeds)});
  std::printf("%s\n", s.render().c_str());

  // Machine-readable end-of-run dump (one line, key=value) for CI diffing.
  obs::Registry registry;
  const char* prefixes[kVariants] = {"managed_circadian.",
                                     "managed_all_active.", "raw_circadian."};
  for (int v = 0; v < kVariants; ++v) {
    merged[v].publish(registry, prefixes[v]);
  }
  std::printf("metrics: %s\n", registry.snapshot().one_line().c_str());
  return 0;
}
