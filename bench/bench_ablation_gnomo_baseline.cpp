/// bench_ablation_gnomo_baseline — the ref. [12] comparison.
///
/// GNOMO (greater-than-nominal Vdd) is the during-operation mitigation the
/// paper positions itself against: same work, boosted supply, passive idle
/// afterward.  This bench races always-on nominal, GNOMO and nominal +
/// accelerated self-healing sleep over 2 years and reports end aging and
/// energy — the paper's claim being that active recovery heals deeper
/// without GNOMO's quadratic energy overhead.

#include <cstdio>

#include "ash/core/gnomo.h"
#include "ash/util/table.h"
#include "common.h"

int main() {
  using namespace ash;
  bench::print_banner(
      "Ablation C — GNOMO (ref. [12]) vs accelerated self-healing",
      "self-healing out-heals GNOMO at nominal work energy");

  core::GnomoConfig cfg;
  const auto study = core::run_gnomo_study(cfg);

  Table t({"strategy", "end aging (mV)", "permanent (mV)", "energy ratio",
           "stress duty"});
  const auto row = [&](const char* name, const core::StrategyOutcome& o) {
    t.add_row({name, fmt_fixed(o.end_delta_vth_v.value() * 1e3, 2),
               fmt_fixed(o.permanent_v.value() * 1e3, 2), fmt_fixed(o.energy_ratio, 2),
               fmt_percent(o.stress_duty, 0)});
  };
  row("always-on nominal", study.nominal);
  row("GNOMO (boost + idle)", study.gnomo);
  row("self-healing sleep", study.self_healing);
  std::printf("%s\n", t.render().c_str());

  Table s({"check", "paper positioning", "measured"});
  s.add_row({"GNOMO reduces aging vs always-on", "yes, with power overhead",
             study.gnomo.end_delta_vth_v < study.nominal.end_delta_vth_v
                 ? "yes"
                 : "NO"});
  s.add_row({"GNOMO pays quadratic energy", "yes",
             strformat("%.0f%% extra",
                       (study.gnomo.energy_ratio - 1.0) * 100.0)});
  s.add_row({"self-healing beats GNOMO on aging", "yes",
             study.self_healing.end_delta_vth_v < study.gnomo.end_delta_vth_v
                 ? "yes"
                 : "NO"});
  std::printf("%s\n", s.render().c_str());

  std::printf("--- boost-voltage sensitivity ---\n");
  Table b({"boost Vdd (V)", "speedup", "GNOMO aging (mV)", "energy ratio"});
  for (double boost : {1.26, 1.32, 1.38, 1.44}) {
    core::GnomoConfig c2;
    c2.boost_v = Volts{boost};
    const auto s2 = core::run_gnomo_study(c2);
    b.add_row({fmt_fixed(boost, 2), fmt_fixed(core::gnomo_speedup(c2), 3),
               fmt_fixed(s2.gnomo.end_delta_vth_v.value() * 1e3, 2),
               fmt_fixed(s2.gnomo.energy_ratio, 2)});
  }
  std::printf("%s\n", b.render().c_str());
  return 0;
}
