#pragma once

/// \file common.h
/// Shared infrastructure for the figure/table reproduction benches.
///
/// Every bench binary regenerates one table or figure of the paper from a
/// fresh run of the virtual lab and prints PAPER vs MEASURED rows, so the
/// output is directly comparable to the publication.  `run_paper_campaign`
/// executes the exact Table 1 schedule on the five virtual chips.

#include <string>
#include <vector>

#include "ash/fpga/chip.h"
#include "ash/tb/data_log.h"
#include "ash/tb/experiment_runner.h"
#include "ash/tb/test_case.h"
#include "ash/util/series.h"

namespace ash::bench {

/// One chip's campaign outcome.
struct ChipRun {
  int chip_id = 0;
  tb::DataLog log;
  /// First measurement of the campaign (the fresh reference, as in the
  /// paper: all later metrics are relative to it).
  double fresh_delay_s = 0.0;
  double fresh_frequency_hz = 0.0;
};

/// The whole five-chip campaign.
struct Campaign {
  std::vector<ChipRun> chips;

  const ChipRun& chip(int id) const;
};

/// Run the Table 1 campaign on five virtual chips (75-stage ROs).
/// `stages` can be reduced for quick runs.
Campaign run_paper_campaign(int stages = 75);

/// DeltaTd(t) series (in ns) for one phase of a chip run, relative to the
/// chip's fresh delay.
Series delay_change_ns(const ChipRun& run, const std::string& phase);

/// Frequency-degradation (%) series for one phase.
Series degradation_percent(const ChipRun& run, const std::string& phase);

/// Recovered-delay series (Eq. (16)) in ns for a recovery phase.
Series recovered_delay_ns(const ChipRun& run, const std::string& phase);

/// Banner printed at the top of every bench.
void print_banner(const std::string& name, const std::string& paper_claim);

}  // namespace ash::bench
