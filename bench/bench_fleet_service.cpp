/// bench_fleet_service — what request-path telemetry costs.
///
/// Forks an `ash_fleetd` daemon twice — instrumented (per-verb latency and
/// queue-wait histograms, flight recorder on) and bare (no clock reads on
/// the request path) — and drives the same status/margin/ping mix through
/// a retrying client.  Reports throughput and client-observed round-trip
/// quantiles side by side: the instrumented column is the price of
/// watching the daemon, and it should be noise against socket I/O.

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "ash/fleet/client.h"
#include "ash/fleet/service.h"
#include "ash/obs/metrics.h"
#include "ash/util/syscall.h"
#include "common.h"

namespace {

using namespace ash;

constexpr int kCalls = 2000;

struct ScenarioRow {
  std::string name;
  double wall_s = 0.0;
  std::uint64_t calls = 0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
};

void make_dir(const std::string& path) {
  const std::string cmd = "mkdir -p '" + path + "'";
  if (std::system(cmd.c_str()) != 0) {
    std::fprintf(stderr, "cannot create %s\n", path.c_str());
    std::exit(1);
  }
}

ScenarioRow run_scenario(const std::string& name, const std::string& root,
                         bool instrument) {
  const std::string dir = root + "/" + name;
  make_dir(dir + "/state");

  fleet::ServiceConfig config;
  config.socket_path = dir + "/fleetd.sock";
  config.state_dir = dir + "/state";
  config.devices = 16;
  config.seed = 0x40A0;
  config.instrument = instrument;
  config.flight_recorder_capacity = instrument ? 256 : 0;
  if (instrument) config.flight_recorder_path = dir + "/flight.txt";

  const pid_t pid = ::fork();
  if (pid < 0) {
    std::fprintf(stderr, "fork failed\n");
    std::exit(1);
  }
  if (pid == 0) {
    try {
      fleet::Service service(config);
      service.run();
      std::_Exit(0);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bench daemon: %s\n", e.what());
      std::_Exit(3);
    }
  }

  ScenarioRow row;
  row.name = name;
  {
    fleet::ClientConfig cc;
    cc.socket_path = config.socket_path;
    cc.client_id = 7;
    fleet::Client client(cc);
    (void)client.ping();  // connect + daemon warm-up outside the clock
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kCalls; ++i) {
      switch (i % 3) {
        case 0:
          (void)client.status();
          break;
        case 1: {
          fleet::MarginRequest req;
          req.device_id = static_cast<std::uint64_t>(i % 16);
          req.duty = 0.5;
          (void)client.margin(req);
          break;
        }
        default:
          (void)client.ping();
          break;
      }
    }
    row.wall_s = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
    row.calls = client.stats().calls;
  }

  ::kill(pid, SIGTERM);
  int status = 0;
  (void)util::retry_eintr([&] { return ::waitpid(pid, &status, 0); });

  const auto snapshot = obs::registry().snapshot();
  for (const auto& h : snapshot.histograms) {
    if (h.name == "fleet.client.rtt_s") {
      row.p50_ms = h.quantile(0.50) * 1e3;
      row.p95_ms = h.quantile(0.95) * 1e3;
      row.p99_ms = h.quantile(0.99) * 1e3;
    }
  }
  obs::registry().clear();  // fresh rtt histogram for the next scenario
  return row;
}

}  // namespace

int main() {
  bench::print_banner(
      "fleet service telemetry overhead",
      "instrumented vs bare request path, same client mix over the wire");

  char tmpl[] = "/tmp/ash_bench_fleetd_XXXXXX";
  if (::mkdtemp(tmpl) == nullptr) {
    std::fprintf(stderr, "mkdtemp failed\n");
    return 1;
  }
  const std::string root = tmpl;

  const ScenarioRow rows[] = {
      run_scenario("instrumented", root, true),
      run_scenario("bare", root, false),
  };

  std::printf("\n%-14s %8s %10s %9s %9s %9s\n", "scenario", "calls", "req/s",
              "p50_ms", "p95_ms", "p99_ms");
  bool ok = true;
  for (const auto& row : rows) {
    ok = ok && row.calls == static_cast<std::uint64_t>(kCalls) + 1;
    std::printf("%-14s %8llu %10.0f %9.3f %9.3f %9.3f\n", row.name.c_str(),
                static_cast<unsigned long long>(row.calls),
                row.wall_s > 0.0 ? static_cast<double>(kCalls) / row.wall_s
                                 : 0.0,
                row.p50_ms, row.p95_ms, row.p99_ms);
  }

  const std::string cleanup = "rm -rf '" + root + "'";
  if (std::system(cleanup.c_str()) != 0) {
    std::fprintf(stderr, "cleanup of %s failed\n", root.c_str());
  }
  if (!ok) {
    std::fprintf(stderr, "\nFAIL: a scenario dropped calls\n");
    return 1;
  }
  std::printf("\nboth scenarios completed every call; the delta is the "
              "telemetry bill\n");
  return 0;
}
