/// bench_table3_extracted_parameters — reproduces Table 3 of the paper.
///
/// "Extracted parameters": Eq. (10)'s fitting parameters (amplitude beta*A
/// and C = 1/tau) extracted from the measured stress curves, plus the
/// recovery-law parameters (acceleration, permanent ratio) from the
/// recovery curves — exactly the procedure the paper uses to overlay its
/// model on Figures 5–8.

#include <cstdio>

#include "ash/core/metrics.h"
#include "ash/core/model_fit.h"
#include "ash/util/constants.h"
#include "ash/util/table.h"
#include "common.h"

int main() {
  using namespace ash;
  bench::print_banner(
      "Table 3 — extracted model parameters (Eq. (10) / Eq. (11) fits)",
      "first-order model parameters extracted from measurement");

  const auto campaign = bench::run_paper_campaign();
  const core::ModelFitter fitter;

  std::printf("--- stress law: DeltaTd(t) = amplitude * ln(1 + C t) ---\n");
  Table t({"case", "chip", "amplitude (ns)", "C (1/s)", "RMSE (ps)", "R^2"});
  struct StressRow {
    const char* phase;
    int chip;
  };
  for (const auto& r : {StressRow{"AS110DC24", 2}, StressRow{"AS110DC24", 5},
                        StressRow{"AS100DC24", 4}, StressRow{"AS110AC24", 1}}) {
    const auto series = bench::delay_change_ns(campaign.chip(r.chip), r.phase)
                            .mapped([](double ns) { return ns * 1e-9; });
    const auto fit = fitter.fit_stress(series);
    t.add_row({r.phase, strformat("%d", r.chip),
               fmt_fixed(fit.amplitude_s.value() * 1e9, 3),
               strformat("%.2e", 1.0 / fit.tau_s.value()),
               fmt_fixed(fit.rmse_s.value() * 1e12, 1), fmt_fixed(fit.r_squared, 4)});
  }
  std::printf("%s\n", t.render().c_str());

  std::printf(
      "--- recovery law: remaining = perm + (1-perm) ... (Eq. (11)) ---\n");
  Table r({"case", "chip", "acceleration AF", "permanent ratio", "R^2"});
  struct RecRow {
    const char* phase;
    int chip;
  };
  const bti::ClosedFormModel prior(fitter.priors());
  for (const auto& rr : {RecRow{"R20Z6", 2}, RecRow{"AR20N6", 3},
                         RecRow{"AR110Z6", 4}, RecRow{"AR110N6", 5}}) {
    const auto& run = campaign.chip(rr.chip);
    const auto remaining = core::delay_change_series(
        run.log.delay_series(rr.phase), run.fresh_delay_s);
    const double afc =
        rr.chip == 4 ? prior.capture_acceleration(Volts{1.2}, Kelvin{celsius(100.0)}) : 1.0;
    const auto fit = fitter.fit_recovery(remaining, hours(24.0) * afc);
    r.add_row({rr.phase, strformat("%d", rr.chip),
               strformat("%.1f", fit.acceleration),
               fmt_fixed(fit.permanent_ratio, 3),
               fmt_fixed(fit.r_squared, 4)});
  }
  std::printf("%s\n", r.render().c_str());

  std::printf(
      "note: the calibrated generative constants are tau_stress = 120 s,\n"
      "AF(110C) ~ 28, AF(-0.3V) ~ 15, permanent ratio 0.04 — the fits\n"
      "should land near these up to counter noise and saturation.\n");
  return 0;
}
