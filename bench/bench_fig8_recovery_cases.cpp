/// bench_fig8_recovery_cases — reproduces Figure 8 of the paper.
///
/// "Delay change over time during recovery": DeltaTd(t) for all four
/// recovery conditions on one axis, with the closed-form model overlaid.
/// Ordering at every time: (110 degC, -0.3 V) heals deepest, then
/// (110 degC, 0 V), then (20 degC, -0.3 V), then (20 degC, 0 V).

#include <cstdio>
#include <vector>

#include "ash/bti/closed_form.h"
#include "ash/util/constants.h"
#include "ash/util/table.h"
#include "common.h"

int main() {
  using namespace ash;
  bench::print_banner(
      "Figure 8 — delay change during recovery, four conditions + model",
      "ordering: 110C/-0.3V < 110C/0V < 20C/-0.3V < 20C/0V remaining");

  const auto campaign = bench::run_paper_campaign();
  struct Case {
    const char* label;
    int chip;
    const char* phase;
    bti::OperatingCondition cond;
  };
  const Case cases[] = {
      {"110C & -0.3V", 5, "AR110N6", bti::recovery(Volts{-0.3}, Celsius{110.0})},
      {"110C & 0V", 4, "AR110Z6", bti::recovery(Volts{0.0}, Celsius{110.0})},
      {"20C & -0.3V", 3, "AR20N6", bti::recovery(Volts{-0.3}, Celsius{20.0})},
      {"20C & 0V", 2, "R20Z6", bti::recovery(Volts{0.0}, Celsius{20.0})},
  };

  const bti::ClosedFormModel model(
      bti::ClosedFormParameters::from_td(bti::default_td_parameters()));

  std::vector<Series> measured;
  std::vector<double> t1_equiv;
  for (const auto& c : cases) {
    const auto& run = campaign.chip(c.chip);
    const Series delay = run.log.delay_series(c.phase);
    measured.push_back(
        delay.mapped([&](double d) { return (d - run.fresh_delay_s) * 1e9; }));
    t1_equiv.push_back(
        c.chip == 4 ? hours(24.0) * model.capture_acceleration(
                                        Volts{1.2}, Kelvin{celsius(100.0)})
                    : hours(24.0));
  }

  Table t({"time (h)", "110C/-0.3V meas", "model", "110C/0V meas", "model",
           "20C/-0.3V meas", "model", "20C/0V meas", "model"});
  for (double h : {0.0, 0.3, 1.0, 2.0, 4.0, 6.0}) {
    std::vector<std::string> row{fmt_fixed(h, 1)};
    for (std::size_t i = 0; i < 4; ++i) {
      const double d0 = measured[i].front().value;
      row.push_back(fmt_fixed(measured[i].at(hours(h)), 2));
      row.push_back(fmt_fixed(
          d0 * model.remaining_fraction(Seconds{t1_equiv[i]}, Seconds{hours(h)}, cases[i].cond),
          2));
    }
    t.add_row(row);
  }
  std::printf("%s\n", t.render().c_str());

  // Ordering check at the 1 h mark (before saturation), normalized to the
  // per-case starting damage so chip-to-chip variation cancels.
  std::vector<double> remaining_frac;
  for (std::size_t i = 0; i < 4; ++i) {
    remaining_frac.push_back(measured[i].at(hours(1.0)) /
                             measured[i].front().value);
  }
  Table s({"check", "paper", "measured"});
  bool ordered = remaining_frac[0] <= remaining_frac[1] + 0.02 &&
                 remaining_frac[1] <= remaining_frac[2] + 0.02 &&
                 remaining_frac[2] <= remaining_frac[3] + 0.02;
  s.add_row({"remaining-damage ordering @1 h", "hot+neg < hot < neg < passive",
             ordered ? "yes" : "NO"});
  for (std::size_t i = 0; i < 4; ++i) {
    s.add_row({std::string("remaining fraction @6 h, ") + cases[i].label, "-",
               fmt_percent(measured[i].back().value / measured[i].front().value,
                           0)});
  }
  std::printf("%s\n", s.render().c_str());

  std::vector<std::vector<double>> chart_rows;
  std::vector<std::string> labels;
  for (std::size_t i = 0; i < 4; ++i) {
    std::vector<double> vals;
    const Series resampled = measured[i].resampled(48);
    for (const auto& p : resampled.samples()) {
      vals.push_back(p.value);
    }
    chart_rows.push_back(std::move(vals));
    labels.push_back(cases[i].label);
  }
  std::printf("%s\n", ascii_chart(labels, chart_rows).c_str());
  return 0;
}
