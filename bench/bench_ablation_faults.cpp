/// bench_ablation_faults — the Table 4 headline under a dirty lab.
///
/// Runs the chip-5 schedule head (burn-in, 24 h DC stress, 6 h accelerated
/// recovery) in an ideal lab, then under the representative fault plan —
/// once with the fault-tolerant campaign runner (retries, robust reading
/// estimator, watchdog + checkpoint rewind) and once with a naive runner
/// (single-shot samples, plain mean, no plausibility checks).  Because a
/// single fault scenario can be lucky for either side, the dirty-lab pair
/// is swept over several fault seeds; the tolerant runner should stay
/// within ~2 % of the ideal margin-relaxed value on every scenario, while
/// the naive runner drifts further on average and in the worst case.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "ash/core/metrics.h"
#include "ash/obs/metrics.h"
#include "ash/tb/fault.h"
#include "ash/util/table.h"
#include "common.h"

namespace {

using namespace ash;

constexpr int kStages = 75;
constexpr int kFaultSeeds = 10;

tb::TestCase chip5_head() {
  tb::TestCase tc = tb::campaign_case("AR110N6");  // the chip-5 schedule
  tc.phases.resize(3);  // BURNIN, AS110DC24, AR110N6
  return tc;
}

tb::CampaignResult run_lab(const tb::RunnerConfig& config) {
  fpga::ChipConfig cc;
  cc.chip_id = 5;
  cc.seed = 0x40A0 + 5;
  cc.ro_stages = kStages;
  fpga::FpgaChip chip(cc);
  return tb::ExperimentRunner(config).run_campaign(chip, chip5_head());
}

double margin_relaxed(const tb::DataLog& log) {
  double fresh_delay = 0.0;
  for (const auto& r : log.records()) {
    if (r.usable()) {
      fresh_delay = r.delay_s.value();
      break;
    }
  }
  return core::design_margin_relaxed(log.delay_series("AR110N6"),
                                     fresh_delay);
}

std::vector<double> usable_delays(const tb::DataLog& log) {
  std::vector<double> out;
  for (const auto& r : log.records()) {
    if (r.usable()) out.push_back(r.delay_s.value());
  }
  return out;
}

/// Worst fractional per-sample delay error of a lab's trajectory against
/// the ideal lab's, index-aligned.  The margin headline only looks at the
/// endpoints of the recovery series; this is what the rest of the campaign
/// data — everything a recovery-dynamics fit would consume — looks like.
double worst_sample_error(const tb::DataLog& log, const tb::DataLog& ideal) {
  const auto a = usable_delays(log);
  const auto b = usable_delays(ideal);
  const std::size_t n = std::min(a.size(), b.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    worst = std::max(worst, std::abs(a[i] / b[i] - 1.0));
  }
  return worst;
}

}  // namespace

int main() {
  using namespace ash;
  bench::print_banner(
      "Ablation — fault injection vs. fault tolerance (Table 4 headline)",
      "tolerant runner reproduces the 72.4% margin-relaxed headline at the "
      "instrument-noise floor under a representative dirty lab and keeps "
      "the whole recovery trajectory clean; a naive runner records "
      "corrupted samples every campaign and risks the headline itself");

  const auto ideal = run_lab(tb::RunnerConfig{});
  const double m_ideal = margin_relaxed(ideal.log);

  // Noise floor: the same ideal lab with reseeded instrument noise.  Any
  // dirty-lab deviation of this size is indistinguishable from an honest
  // re-run of the campaign.
  tb::RunnerConfig reseeded;
  reseeded.seed = derive_seed(reseeded.seed, 1);
  const auto reseeded_run = run_lab(reseeded);
  const double noise_floor =
      std::abs(margin_relaxed(reseeded_run.log) - m_ideal);
  const double floor_traj = worst_sample_error(reseeded_run.log, ideal.log);

  Table t({"fault seed", "lab", "margin relaxed", "|delta| vs ideal",
           "worst sample err", "usable", "phase aborts"});
  double sum_tol = 0.0;
  double sum_naive = 0.0;
  double worst_tol = 0.0;
  double worst_naive = 0.0;
  double traj_tol = 0.0;
  double traj_naive = 0.0;
  tb::FaultReport faults_tol;
  tb::FaultReport faults_naive;
  for (int k = 0; k < kFaultSeeds; ++k) {
    tb::FaultPlan plan = tb::FaultPlan::representative();
    plan.seed = derive_seed(plan.seed, static_cast<std::uint64_t>(k));
    const auto tolerant = run_lab(tb::tolerant_runner_config(plan));
    const auto naive = run_lab(tb::naive_runner_config(plan));
    faults_tol.merge(tolerant.faults);
    faults_naive.merge(naive.faults);

    const struct {
      const char* label;
      const tb::CampaignResult* result;
      double* sum;
      double* worst;
      double* traj;
    } rows[] = {{"tolerant", &tolerant, &sum_tol, &worst_tol, &traj_tol},
                {"naive", &naive, &sum_naive, &worst_naive, &traj_naive}};
    for (const auto& row : rows) {
      const double m = margin_relaxed(row.result->log);
      const double delta = std::abs(m - m_ideal);
      const double traj = worst_sample_error(row.result->log, ideal.log);
      *row.sum += delta;
      *row.worst = std::max(*row.worst, delta);
      *row.traj += traj;
      const auto yield = core::campaign_yield(row.result->log);
      t.add_row({strformat("%d", k), row.label, fmt_percent(m, 1),
                 fmt_percent(delta, 2), fmt_percent(traj, 2),
                 fmt_percent(yield.usable_fraction(), 1),
                 strformat("%d", row.result->faults.phase_aborts)});
    }
  }
  std::printf("%s\n", t.render().c_str());

  Table s({"lab", "mean |delta margin|", "worst |delta margin|",
           "mean worst sample err"});
  s.add_row({"reseeded ideal (noise floor)", fmt_percent(noise_floor, 2),
             fmt_percent(noise_floor, 2),
             fmt_percent(floor_traj, 2)});
  s.add_row({"tolerant", fmt_percent(sum_tol / kFaultSeeds, 2),
             fmt_percent(worst_tol, 2),
             fmt_percent(traj_tol / kFaultSeeds, 2)});
  s.add_row({"naive", fmt_percent(sum_naive / kFaultSeeds, 2),
             fmt_percent(worst_naive, 2),
             fmt_percent(traj_naive / kFaultSeeds, 2)});
  std::printf("ideal-lab margin relaxed: %s\n\n%s\n",
              fmt_percent(m_ideal, 1).c_str(), s.render().c_str());

  std::printf("tolerant (all scenarios) %s",
              faults_tol.render().c_str());
  std::printf("naive    (all scenarios) %s",
              faults_naive.render().c_str());

  // Machine-readable end-of-run dump (one line, key=value) for CI diffing.
  obs::Registry registry;
  faults_tol.publish(registry, "tolerant.");
  faults_naive.publish(registry, "naive.");
  std::printf("metrics: %s\n", registry.snapshot().one_line().c_str());
  return 0;
}
