/// bench_ablation_abb — "adaptation is no panacea" (Sec. 1), quantified.
///
/// Races the accept/track/adapt school (adaptive body bias, refs. [9]-[11])
/// against no mitigation and accelerated self-healing over a 5-year
/// mission.  ABB holds timing perfectly while its bias range lasts — but
/// every compensated millivolt multiplies subthreshold leakage, and the
/// device underneath keeps aging.  Self-healing removes the drift itself.

#include <cstdio>

#include "ash/core/abb.h"
#include "ash/util/table.h"
#include "common.h"

int main() {
  using namespace ash;
  bench::print_banner(
      "Ablation I — adaptive body bias (refs [9]-[11]) vs self-healing",
      "ABB keeps timing but burns leakage and runs out of range");

  core::AbbConfig cfg;
  const auto study = core::run_abb_study(cfg);

  Table t({"arm", "device drift (mV)", "timing residual (mV)",
           "mean leakage", "availability", "bias state"});
  const auto row = [&](const char* name, const core::AbbArm& a,
                       const char* bias) {
    t.add_row({name, fmt_fixed(a.end_delta_vth_v.value() * 1e3, 2),
               fmt_fixed(a.end_residual_vth_v.value() * 1e3, 2),
               fmt_fixed(a.mean_leakage_ratio, 2) + "x",
               fmt_percent(a.availability, 0), bias});
  };
  row("no mitigation", study.none, "-");
  row("adaptive body bias", study.abb,
      study.abb.bias_exhausted
          ? "EXHAUSTED"
          : strformat("%.0f mV used", study.abb.end_body_bias_v * 1e3)
                .c_str());
  row("accelerated self-healing", study.self_healing, "-");
  std::printf("%s\n", t.render().c_str());

  std::printf("--- bias-range sensitivity ---\n");
  Table b({"max body bias (mV)", "exhausted?", "timing residual (mV)",
           "mean leakage"});
  for (double range_mv : {10.0, 20.0, 40.0, 80.0, 450.0}) {
    core::AbbConfig c2;
    c2.max_body_bias_v = Volts{range_mv * 1e-3};
    const auto s2 = core::run_abb_study(c2);
    b.add_row({fmt_fixed(range_mv, 0),
               s2.abb.bias_exhausted ? "yes" : "no",
               fmt_fixed(s2.abb.end_residual_vth_v.value() * 1e3, 2),
               fmt_fixed(s2.abb.mean_leakage_ratio, 2) + "x"});
  }
  std::printf("%s\n", b.render().c_str());
  std::printf(
      "reading: the paper's argument in numbers — with scaling, the drift\n"
      "to compensate grows while bias headroom shrinks; the adapted system\n"
      "'will function correctly but with poor power' (mean leakage row),\n"
      "whereas self-healing keeps the device near-fresh for a 20%% duty\n"
      "cost that a circadian schedule can hide in demand valleys.\n");
  return 0;
}
