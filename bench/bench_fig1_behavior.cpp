/// bench_fig1_behavior — reproduces Figure 1 of the paper.
///
/// "Behavioral illustration of stress and recovery": two stress/recovery
/// cycles under *passive* recovery conditions.  Recovery is visibly slower
/// than degradation, each recovery is partial, and the unrecovered residue
/// accumulates — DeltaVth(t1+t2) ends above zero and the second cycle ends
/// above the first.

#include <cstdio>
#include <vector>

#include "ash/bti/trap_ensemble.h"
#include "ash/util/constants.h"
#include "ash/util/table.h"
#include "common.h"

int main() {
  using namespace ash;
  bench::print_banner(
      "Figure 1 — behavioural stress/recovery cycles (passive recovery)",
      "partial recovery; unrecovered residue accumulates cycle over cycle");

  // Densified trap population for a smooth single-device illustration
  // (identical mean physics; the RO averages ~1000 such devices).
  bti::TdParameters params = bti::default_td_parameters();
  params.delta_vth_mean_v =
      params.delta_vth_mean_v * (params.traps_per_device / 4000.0);
  params.traps_per_device = 4000;
  bti::TrapEnsemble device(params, 1);
  const auto stress = bti::dc_stress(Volts{1.2}, Celsius{110.0});
  const auto rest = bti::recovery(Volts{0.0}, Celsius{20.0});

  Series trace("dvth");
  std::vector<double> cycle_end_mv;
  double t = 0.0;
  const double step = hours(0.25);
  for (int cycle = 0; cycle < 2; ++cycle) {
    for (double s = 0.0; s < hours(8.0); s += step) {
      device.evolve(stress, Seconds{step});
      t += step;
      trace.append(t, device.delta_vth() * 1e3);
    }
    const double peak = device.delta_vth() * 1e3;
    for (double s = 0.0; s < hours(8.0); s += step) {
      device.evolve(rest, Seconds{step});
      t += step;
      trace.append(t, device.delta_vth() * 1e3);
    }
    cycle_end_mv.push_back(device.delta_vth() * 1e3);
    std::printf("cycle %d: peak DeltaVth = %.2f mV, after recovery = %.2f mV "
                "(residue %.0f%%)\n",
                cycle + 1, peak, cycle_end_mv.back(),
                100.0 * cycle_end_mv.back() / peak);
  }

  Table s({"property", "paper", "measured"});
  s.add_row({"DeltaVth(t1+t2) > 0 (partial recovery)", "yes",
             cycle_end_mv[0] > 0.05 ? "yes" : "NO"});
  s.add_row({"cycle 2 residue > cycle 1 residue (accumulation)", "yes",
             cycle_end_mv[1] > cycle_end_mv[0] ? "yes" : "NO"});
  std::printf("%s\n", s.render().c_str());

  std::vector<double> vals;
  const Series resampled = trace.resampled(64);
  for (const auto& p : resampled.samples()) {
    vals.push_back(std::max(0.0, p.value));
  }
  std::printf("%s\n",
              ascii_chart({"DeltaVth (mV), 8h stress / 8h passive recovery x2"},
                          {vals})
                  .c_str());
  return 0;
}
