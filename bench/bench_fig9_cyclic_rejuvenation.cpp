/// bench_fig9_cyclic_rejuvenation — reproduces Figure 9 of the paper.
///
/// "Illustration of wearout vs accelerated recovery": repeated cycles of
/// 24 h accelerated DC stress followed by 6 h of deep rejuvenation
/// (110 degC, -0.3 V, alpha = 4).  Each cycle's recovery returns the chip
/// near its fresh point; the slowly-growing floor is the irreversible
/// component.

#include <cstdio>
#include <vector>

#include "ash/bti/trap_ensemble.h"
#include "ash/util/constants.h"
#include "ash/util/table.h"
#include "common.h"

int main() {
  using namespace ash;
  bench::print_banner(
      "Figure 9 — cyclic wearout + accelerated recovery (alpha = 4)",
      "deep rejuvenation each cycle; only the irreversible floor accretes");

  // A single 160-trap device has visible seed-to-seed spread (the RO
  // averages ~1000 devices); densify the population for a smooth
  // illustration at identical mean physics.
  bti::TdParameters params = bti::default_td_parameters();
  params.delta_vth_mean_v =
      params.delta_vth_mean_v * (params.traps_per_device / 4000.0);
  params.traps_per_device = 4000;
  bti::TrapEnsemble device(params, 9);
  const auto stress = bti::dc_stress(Volts{1.2}, Celsius{110.0});
  const auto heal = bti::recovery(Volts{-0.3}, Celsius{110.0});

  Series trace("dvth_mv");
  Table t({"cycle", "peak DeltaVth (mV)", "post-recovery (mV)",
           "recovered", "permanent floor (mV)"});
  double now = 0.0;
  const double step = hours(0.5);
  std::vector<double> residue;
  for (int cycle = 1; cycle <= 4; ++cycle) {
    for (double s = 0.0; s < hours(24.0); s += step) {
      device.evolve(stress, Seconds{step});
      now += step;
      trace.append(now, device.delta_vth() * 1e3);
    }
    const double peak = device.delta_vth() * 1e3;
    for (double s = 0.0; s < hours(6.0); s += step) {
      device.evolve(heal, Seconds{step});
      now += step;
      trace.append(now, device.delta_vth() * 1e3);
    }
    const double post = device.delta_vth() * 1e3;
    residue.push_back(post);
    t.add_row({strformat("%d", cycle), fmt_fixed(peak, 2), fmt_fixed(post, 2),
               fmt_percent(1.0 - post / peak, 0),
               fmt_fixed(device.permanent_delta_vth() * 1e3, 2)});
  }
  std::printf("%s\n", t.render().c_str());

  Table s({"check", "paper", "measured"});
  s.add_row({"every cycle recovers >= ~90%", "yes (headline)",
             residue.back() < 0.15 * trace.max_value() ? "yes" : "NO"});
  // The residue is the permanent floor plus the slowest-emitting tail of
  // the reversible spectrum — same order of magnitude, both << peak.
  s.add_row(
      {"post-recovery residue tracks the permanent floor", "yes",
       residue.back() < 5.0 * device.permanent_delta_vth() * 1e3 ? "yes"
                                                                 : "NO"});
  std::printf("%s\n", s.render().c_str());

  std::vector<double> vals;
  const Series resampled = trace.resampled(120);
  for (const auto& p : resampled.samples()) vals.push_back(p.value);
  std::printf("%s\n",
              ascii_chart({"DeltaVth (mV), 4x (24h stress + 6h deep heal)"},
                          {vals})
                  .c_str());
  return 0;
}
