/// bench_fig4_ac_dc_stress — reproduces Figure 4 of the paper.
///
/// "AC/DC stress test results": RO frequency degradation over 24 h of
/// accelerated stress at 110 degC, AC (chip 1) vs DC (chip 2).  The paper's
/// shape: fast degradation in the first ~3 hours, then slowing; AC ends at
/// about half of DC (~1.1 % vs ~2.2 %).

#include <cstdio>

#include "ash/util/constants.h"
#include "ash/util/table.h"
#include "common.h"

int main() {
  using namespace ash;
  bench::print_banner(
      "Figure 4 — AC vs DC accelerated stress (24 h @ 110 degC)",
      "fast-then-slow degradation; AC ~ half of DC (~1.1 % vs ~2.2 %)");

  const auto campaign = bench::run_paper_campaign();
  const auto ac = bench::degradation_percent(campaign.chip(1), "AS110AC24");
  const auto dc = bench::degradation_percent(campaign.chip(2), "AS110DC24");

  Table t({"time (h)", "AC stress (%)", "DC stress (%)"});
  for (double h : {0.0, 1.0, 3.0, 6.0, 12.0, 18.0, 24.0}) {
    t.add_row({fmt_fixed(h, 1), fmt_fixed(ac.at(hours(h)), 2),
               fmt_fixed(dc.at(hours(h)), 2)});
  }
  std::printf("%s\n", t.render().c_str());

  const double ratio = ac.back().value / dc.back().value;
  const double dc_first3h = dc.at(hours(3.0));
  Table s({"metric", "paper", "measured"});
  s.add_row({"DC degradation @24 h", "~2.2%", fmt_fixed(dc.back().value, 2) + "%"});
  s.add_row({"AC degradation @24 h", "~1.1%", fmt_fixed(ac.back().value, 2) + "%"});
  s.add_row({"AC/DC ratio", "~0.5", fmt_fixed(ratio, 2)});
  s.add_row({"DC share done in first 3 h", "large (fast start)",
             fmt_percent(dc_first3h / dc.back().value, 0)});
  std::printf("%s\n", s.render().c_str());

  const auto ac_r = ac.resampled(48);
  const auto dc_r = dc.resampled(48);
  std::vector<double> ac_v;
  std::vector<double> dc_v;
  for (const auto& p : ac_r.samples()) ac_v.push_back(p.value);
  for (const auto& p : dc_r.samples()) dc_v.push_back(p.value);
  std::printf("%s\n",
              ascii_chart({"DC stress", "AC stress"}, {dc_v, ac_v}).c_str());
  return 0;
}
