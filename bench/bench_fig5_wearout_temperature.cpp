/// bench_fig5_wearout_temperature — reproduces Figure 5 of the paper.
///
/// "Accelerated wearout with 110 degC and 100 degC for 1 day": measured
/// delay change over time for chips 5 (110 degC) and 4 (100 degC), with
/// the extracted first-order model (Eq. (10)) overlaid.  Shape: fast
/// initial degradation, then logarithmic slowing; higher temperature
/// degrades more; model tracks measurement.

#include <cstdio>

#include "ash/core/model_fit.h"
#include "ash/util/constants.h"
#include "ash/util/table.h"
#include "common.h"

int main() {
  using namespace ash;
  bench::print_banner(
      "Figure 5 — accelerated wearout at 110 vs 100 degC (24 h DC)",
      "log-like delay growth; 110 degC > 100 degC; model matches measurement");

  const auto campaign = bench::run_paper_campaign();
  const auto d110 = bench::delay_change_ns(campaign.chip(5), "AS110DC24");
  const auto d100 = bench::delay_change_ns(campaign.chip(4), "AS100DC24");

  const core::ModelFitter fitter;
  const auto fit110 = fitter.fit_stress(
      d110.mapped([](double ns) { return ns * 1e-9; }));
  const auto fit100 = fitter.fit_stress(
      d100.mapped([](double ns) { return ns * 1e-9; }));

  Table t({"time (h)", "110C meas (ns)", "110C model (ns)", "100C meas (ns)",
           "100C model (ns)"});
  for (double h : {0.5, 1.0, 3.0, 6.0, 12.0, 18.0, 24.0}) {
    t.add_row({fmt_fixed(h, 1), fmt_fixed(d110.at(hours(h)), 2),
               fmt_fixed(fit110.delta_td(hours(h)) * 1e9, 2),
               fmt_fixed(d100.at(hours(h)), 2),
               fmt_fixed(fit100.delta_td(hours(h)) * 1e9, 2)});
  }
  std::printf("%s\n", t.render().c_str());

  Table s({"metric", "paper", "measured"});
  s.add_row({"delay change @110C, 24 h", "~2.2% of Td0",
             fmt_fixed(d110.back().value, 2) + " ns"});
  s.add_row({"100C/110C end ratio", "~0.77 (Table 2)",
             fmt_fixed(d100.back().value / d110.back().value, 2)});
  s.add_row({"model fit R^2 (110C)", "close match",
             fmt_fixed(fit110.r_squared, 4)});
  s.add_row({"model fit R^2 (100C)", "close match",
             fmt_fixed(fit100.r_squared, 4)});
  std::printf("%s\n", s.render().c_str());

  std::vector<double> v110;
  std::vector<double> v100;
  const Series r110 = d110.resampled(64);
  const Series r100 = d100.resampled(64);
  for (const auto& p : r110.samples()) v110.push_back(p.value);
  for (const auto& p : r100.samples()) v100.push_back(p.value);
  std::printf("%s\n", ascii_chart({"110C measurement", "100C measurement"},
                                  {v110, v100})
                          .c_str());
  return 0;
}
