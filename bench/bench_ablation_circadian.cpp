/// bench_ablation_circadian — the paper's future-work "virtual circadian
/// rhythm": which periodic deep-rejuvenation schedule should a system run?
///
/// Sweeps cycle period x alpha under a fixed mission profile and prints
/// the full grid plus the availability-vs-worst-aging Pareto frontier —
/// the design menu the paper's cross-layer-optimization paragraph asks for.

#include <cstdio>

#include "ash/core/circadian.h"
#include "ash/util/constants.h"
#include "ash/util/table.h"
#include "common.h"

int main() {
  using namespace ash;
  bench::print_banner(
      "Ablation E — virtual circadian rhythm: schedule design space",
      "short cycles bound the worst case; alpha trades margin for uptime");

  core::CircadianSweepConfig cfg;
  const auto points = core::explore_circadian(cfg);

  Table t({"period (h)", "alpha", "availability", "worst dVth (mV)",
           "mean dVth (mV)", "permanent (mV)"});
  for (const auto& p : points) {
    t.add_row({fmt_fixed(to_hours(p.cycle_period_s.value()), 0),
               fmt_fixed(p.alpha, 0),
               fmt_percent(p.availability, 1),
               fmt_fixed(p.worst_delta_vth_v.value() * 1e3, 2),
               fmt_fixed(p.mean_delta_vth_v.value() * 1e3, 2),
               fmt_fixed(p.end_permanent_v.value() * 1e3, 2)});
  }
  std::printf("%s\n", t.render().c_str());

  std::printf("--- availability vs worst-aging Pareto frontier ---\n");
  Table f({"period (h)", "alpha", "availability", "worst dVth (mV)"});
  for (const auto& p : core::pareto_schedules(points)) {
    f.add_row({fmt_fixed(to_hours(p.cycle_period_s.value()), 0),
               fmt_fixed(p.alpha, 0),
               fmt_percent(p.availability, 1),
               fmt_fixed(p.worst_delta_vth_v.value() * 1e3, 2)});
  }
  std::printf("%s\n", f.render().c_str());
  std::printf(
      "reading: every frontier point is a defensible design; the knee is\n"
      "typically a daily cycle at alpha ~ 4 — the paper's demonstrated\n"
      "operating point.\n");
  return 0;
}
