/// bench_table2_delay_change — reproduces Table 2 of the paper.
///
/// "Delay change (%) for different temperature conditions": end-of-stress
/// frequency/delay degradation for the accelerated-stress cases.
/// Paper values: AS110DC24 ~2.2 %, AS100DC24 ~1.7 %, AS110AC24 ~1.1 %.

#include <cstdio>

#include "ash/util/table.h"
#include "common.h"

int main() {
  using namespace ash;
  bench::print_banner(
      "Table 2 — delay change (%) per stress condition (24 h)",
      "110C DC ~2.2%; 100C DC ~1.7%; 110C AC ~1.1%");

  const auto campaign = bench::run_paper_campaign();
  struct Row {
    const char* case_label;
    int chip;
    const char* phase;
    const char* paper;
  };
  const Row rows[] = {
      {"AS110DC24", 2, "AS110DC24", "~2.2%"},
      {"AS110DC24 (chip 3)", 3, "AS110DC24", "~2.2%"},
      {"AS110DC24 (chip 5)", 5, "AS110DC24", "~2.2%"},
      {"AS100DC24", 4, "AS100DC24", "~1.7%"},
      {"AS110AC24", 1, "AS110AC24", "~1.1%"},
  };

  Table t({"case", "chip", "paper", "measured"});
  double dc110 = 0.0;
  double dc100 = 0.0;
  for (const auto& r : rows) {
    const auto deg = bench::degradation_percent(campaign.chip(r.chip), r.phase);
    if (std::string(r.case_label) == "AS110DC24") dc110 = deg.back().value;
    if (std::string(r.case_label) == "AS100DC24") dc100 = deg.back().value;
    t.add_row({r.case_label, strformat("%d", r.chip), r.paper,
               fmt_fixed(deg.back().value, 2) + "%"});
  }
  std::printf("%s\n", t.render().c_str());

  Table s({"derived", "paper", "measured"});
  s.add_row({"100C/110C ratio", "~0.77", fmt_fixed(dc100 / dc110, 2)});
  std::printf("%s\n", s.render().c_str());
  return 0;
}
