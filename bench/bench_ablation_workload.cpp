/// bench_ablation_workload — demand-aligned circadian self-healing.
///
/// Real workloads have their own circadian rhythm; the sleep a
/// rejuvenation schedule needs is often already there at night.  This
/// ablation runs the 8-core system against a day/night demand curve and
/// compares schedulers: with a diurnal workload, deep rejuvenation costs
/// *zero* peak throughput — the system heals in the demand valleys.

#include <cmath>
#include <cstdio>

#include "ash/mc/system.h"
#include "ash/util/table.h"
#include "common.h"

int main() {
  using namespace ash;
  bench::print_banner(
      "Ablation H — demand-aligned circadian rejuvenation",
      "night-time demand valleys provide the sleep budget for free");

  mc::SystemConfig cfg;
  cfg.horizon_s = Seconds{1.0 * 365.25 * 86400.0};
  cfg.margin_delta_vth_v = Volts{9e-3};
  // Hourly scheduling: resolves the day/night edges of the demand curve.
  cfg.interval_s = Seconds{3600.0};

  const mc::DiurnalWorkload diurnal(/*day=*/8, /*night=*/3);
  const mc::ConstantWorkload peak(8);
  const mc::ConstantWorkload reserved(6);  // statically reserving 2 cores

  struct Arm {
    const char* name;
    const mc::Workload* workload;
  };
  const Arm arms[] = {
      {"peak demand, no sleep possible", &peak},
      {"static 6-of-8 reservation", &reserved},
      {"diurnal demand (8 day / 3 night)", &diurnal},
  };

  Table t({"demand model", "mean active cores", "sleep share",
           "sleep T (degC)", "mean aging (mV)", "worst aging (mV)"});
  for (const auto& arm : arms) {
    mc::HeaterAwareCircadianScheduler scheduler;
    const auto r = simulate_system(cfg, scheduler, *arm.workload);
    t.add_row({arm.name,
               fmt_fixed(r.throughput_core_s / cfg.horizon_s, 2),
               fmt_percent(r.sleep_share, 1),
               std::isnan(r.mean_sleep_temp_c.value())
                   ? std::string("-")
                   : fmt_fixed(r.mean_sleep_temp_c.value(), 1),
               fmt_fixed(r.mean_end_delta_vth_v.value() * 1e3, 2),
               fmt_fixed(r.worst_end_delta_vth_v.value() * 1e3, 2)});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf(
      "reading: the diurnal arm serves every demanded core-hour (peak\n"
      "included) yet ages like the reservation arm — the rejuvenation\n"
      "budget rides the workload's own rhythm, the paper's closing vision\n"
      "of a 'virtual circadian rhythm' grounded in demand data.\n");
  return 0;
}
