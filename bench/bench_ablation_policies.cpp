/// bench_ablation_policies — ablation for Sec. 2.2's proactive-vs-reactive
/// argument.
///
/// Races the four single-device recovery policies over a 5-year mission and
/// reports lifetime, availability, average aging and recovery-event counts
/// — quantifying the paper's qualitative claims: passive sleep barely
/// helps; reactive recovery works but operates more aged and trips at
/// unpredictable times; proactive recovery keeps the device refreshed.

#include <cstdio>

#include "ash/core/lifetime.h"
#include "ash/util/table.h"
#include "common.h"

int main() {
  using namespace ash;
  bench::print_banner(
      "Ablation A — recovery scheduling policies (Sec. 2.2)",
      "proactive > reactive > passive > none on aging; reactive runs aged");

  Table t({"policy", "lifetime (days)", "availability", "recovery events",
           "mean aging (mV)", "worst aging (mV)", "permanent (mV)"});
  for (const auto policy :
       {core::Policy::kNoRecovery, core::Policy::kPassiveSleep,
        core::Policy::kReactive, core::Policy::kProactive}) {
    core::LifetimeConfig cfg;
    cfg.policy = policy;
    cfg.horizon_s = Seconds{5.0 * 365.25 * 86400.0};
    cfg.margin_delta_vth_v = Volts{9.5e-3};
    const auto r = simulate_lifetime(cfg);
    double mean_mv = 0.0;
    for (const auto& s : r.trace.samples()) mean_mv += s.value;
    mean_mv = mean_mv / static_cast<double>(r.trace.size()) * 1e3;
    t.add_row({to_string(policy),
               r.margin_exceeded
                   ? fmt_fixed(r.time_to_margin_s.value() / 86400.0, 0)
                   : ">" + fmt_fixed(cfg.horizon_s.value() / 86400.0, 0),
               fmt_percent(r.availability, 1),
               strformat("%d", r.recovery_events), fmt_fixed(mean_mv, 2),
               fmt_fixed(r.worst_delta_vth_v.value() * 1e3, 2),
               fmt_fixed(r.end_permanent_v.value() * 1e3, 2)});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf(
      "reading: proactive and reactive both survive the horizon, but the\n"
      "reactive device spends its life near the high-water mark (higher\n"
      "mean aging => worse expected performance/power, the paper's point),\n"
      "while passive sleep gives up availability for little healing.\n");
  return 0;
}
