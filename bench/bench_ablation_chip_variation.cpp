/// bench_ablation_chip_variation — chip-to-chip statistics of aging and
/// recovery.
///
/// The paper notes "the effects of chip to chip variations on aging are
/// also ignored for now".  The virtual fab makes the study cheap: run the
/// stress+recovery experiment on a population of chips (distinct trap
/// populations, process corners and mismatch) and report the spread of the
/// metrics the paper quotes as single numbers.
///
/// The population runs THREE times — fanned over an in-process thread
/// pool, sharded across supervised worker processes (`FleetSupervisor`,
/// one forked worker per chip with durable checkpoints), and in lockstep
/// through the batch engine (`tb::PopulationRunner` over per-site
/// `bti::BatchEnsemble`s in exact mode) — and all three sample logs are
/// required to agree byte-for-byte.  That pins two determinism contracts
/// on a real workload: process isolation, checkpoint round-trips and
/// phase-at-a-time resume must not perturb the science payload by a single
/// bit, and neither may swapping the per-chip aging kernels for the fused
/// population kernels.

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "ash/core/metrics.h"
#include "ash/fleet/supervisor.h"
#include "ash/fpga/chip.h"
#include "ash/tb/data_log.h"
#include "ash/tb/experiment_runner.h"
#include "ash/tb/population_runner.h"
#include "ash/tb/test_case.h"
#include "ash/util/crc32.h"
#include "ash/util/stats.h"
#include "ash/util/table.h"
#include "ash/util/thread_pool.h"
#include "common.h"

namespace {

using namespace ash;

constexpr int kChips = 20;

fpga::ChipConfig chip_config(int i) {
  fpga::ChipConfig cc;
  cc.chip_id = i + 1;
  cc.seed = 0x7A0 + static_cast<std::uint64_t>(i);
  cc.ro_stages = 25;  // smaller CUT: more per-chip spread, faster run
  return cc;
}

tb::TestCase variation_case(int chip_id) {
  tb::TestCase tc;
  tc.name = "variation";
  tc.chip_id = chip_id;
  tc.phases = {
      tb::burn_in_phase(),
      tb::dc_stress_phase("AS110DC24", Celsius{110.0}, units::hours(24.0)),
      tb::recovery_phase("AR110N6", Volts{-0.3}, Celsius{110.0},
                         units::hours(6.0))};
  return tc;
}

struct ChipMetrics {
  double fresh_mhz;
  double degradation_pct;
  double recovered_pct;
};

ChipMetrics chip_metrics(const tb::DataLog& log) {
  const double fresh_hz = log.records().front().frequency_hz.value();
  const double fresh_delay = log.records().front().delay_s.value();
  const auto stress_f = log.frequency_series("AS110DC24");
  return ChipMetrics{
      fresh_hz / 1e6,
      100.0 * (1.0 - stress_f.back().value / fresh_hz),
      100.0 * core::recovered_fraction(log.delay_series("AR110N6"),
                                       fresh_delay)};
}

std::string log_bytes(const tb::DataLog& log) {
  std::ostringstream os;
  log.write_csv(os);
  return os.str();
}

/// The whole population, sharded across supervised worker processes (one
/// forked worker per chip, durable checkpoints in a scratch directory).
/// Returns the per-chip logs in chip order.
std::vector<tb::DataLog> run_process_sharded() {
  char tmpl[] = "/tmp/ash_varfleet_XXXXXX";
  if (::mkdtemp(tmpl) == nullptr) {
    throw std::runtime_error("mkdtemp failed for the fleet scratch dir");
  }
  const std::string dir = tmpl;
  std::vector<fleet::ShardSpec> shards;
  for (int i = 0; i < kChips; ++i) {
    fleet::ShardSpec spec;
    spec.shard_id = i;
    spec.chip = chip_config(i);
    spec.test_case = variation_case(spec.chip.chip_id);
    shards.push_back(spec);
  }
  fleet::FleetConfig config;
  config.checkpoint_dir = dir;
  fleet::FleetSupervisor supervisor(config, shards);
  const fleet::FleetReport report = supervisor.run();
  std::vector<tb::DataLog> logs;
  if (report.all_completed()) {
    for (const fleet::ShardOutcome& shard : report.shards) {
      logs.push_back(shard.state.log);
    }
  }
  const std::string cleanup = "rm -rf '" + dir + "'";
  (void)std::system(cleanup.c_str());
  if (logs.empty()) {
    throw std::runtime_error("process-sharded population did not complete");
  }
  return logs;
}

}  // namespace

int main() {
  bench::print_banner(
      "Ablation F — chip-to-chip variation of aging and recovery",
      "population statistics behind the paper's single-chip numbers");

  // Pass 1: chips fanned out over an in-process worker pool, collected in
  // chip order so the statistics see the same value sequence as a serial
  // loop.  (Scoped so every thread is joined before the fleet pass forks.)
  std::vector<tb::DataLog> threaded;
  {
    util::ThreadPool pool(util::recommended_pool_size(kChips));
    threaded = pool.parallel_for(kChips, [&](int i) {
      fpga::FpgaChip chip(chip_config(i));
      tb::ExperimentRunner runner{tb::RunnerConfig{}};
      return runner.run(chip, variation_case(i + 1));
    });
  }

  // Pass 2: the same population as a supervised multi-process fleet.
  const std::vector<tb::DataLog> sharded = run_process_sharded();

  // Pass 3: the same population in lockstep through the batch engine.
  std::vector<tb::DataLog> batched;
  {
    std::vector<fpga::FpgaChip> chips;
    chips.reserve(kChips);
    for (int i = 0; i < kChips; ++i) chips.emplace_back(chip_config(i));
    std::vector<fpga::FpgaChip*> ptrs;
    for (auto& chip : chips) ptrs.push_back(&chip);
    // The schedule is shared; per-chip test cases differ only in the
    // chip_id field, which the runners ignore (ids come from the chips).
    tb::PopulationRunner runner{tb::RunnerConfig{}};
    batched = runner.run(ptrs, variation_case(1));
  }

  // Neither the fleet layer nor the batch engine may perturb the science
  // payload by a single bit.
  std::string bytes_threaded, bytes_sharded, bytes_batched;
  for (const tb::DataLog& log : threaded) bytes_threaded += log_bytes(log);
  for (const tb::DataLog& log : sharded) bytes_sharded += log_bytes(log);
  for (const tb::DataLog& log : batched) bytes_batched += log_bytes(log);
  const bool identical =
      bytes_threaded == bytes_sharded && bytes_threaded == bytes_batched;
  std::printf("threaded vs process-sharded vs batch-engine sample logs: %s "
              "(crc32 %08x / %08x / %08x)\n\n",
              identical ? "bit-identical" : "DIVERGED",
              util::crc32(bytes_threaded), util::crc32(bytes_sharded),
              util::crc32(bytes_batched));
  if (!identical) return 1;

  std::vector<double> fresh_mhz;
  std::vector<double> degradation_pct;
  std::vector<double> recovered_pct;
  for (const tb::DataLog& log : threaded) {
    const ChipMetrics m = chip_metrics(log);
    fresh_mhz.push_back(m.fresh_mhz);
    degradation_pct.push_back(m.degradation_pct);
    recovered_pct.push_back(m.recovered_pct);
  }

  const auto row = [&](const char* name, std::vector<double> xs) {
    return std::vector<std::string>{
        name,
        fmt_fixed(mean(xs), 2),
        fmt_fixed(stddev(xs), 2),
        fmt_fixed(percentile(xs, 5.0), 2),
        fmt_fixed(percentile(xs, 95.0), 2),
    };
  };
  Table t({"metric (20 chips)", "mean", "sigma", "p5", "p95"});
  t.add_row(row("fresh frequency (MHz)", fresh_mhz));
  t.add_row(row("24 h DC degradation (%)", degradation_pct));
  t.add_row(row("AR110N6 recovered (%)", recovered_pct));
  std::printf("%s\n", t.render().c_str());

  Table s({"observation", "implication"});
  s.add_row({"fresh-frequency spread >> degradation spread",
             "absolute frequency is a bad aging metric"});
  s.add_row({"recovered-fraction spread is small",
             "the paper's Eq. (16) normalization transfers across chips"});
  std::printf("%s\n", s.render().c_str());
  return 0;
}
