/// bench_ablation_chip_variation — chip-to-chip statistics of aging and
/// recovery.
///
/// The paper notes "the effects of chip to chip variations on aging are
/// also ignored for now".  The virtual fab makes the study cheap: run the
/// stress+recovery experiment on a population of chips (distinct trap
/// populations, process corners and mismatch) and report the spread of the
/// metrics the paper quotes as single numbers.

#include <cstdio>
#include <vector>

#include "ash/core/metrics.h"
#include "ash/fpga/chip.h"
#include "ash/tb/experiment_runner.h"
#include "ash/tb/test_case.h"
#include "ash/util/stats.h"
#include "ash/util/table.h"
#include "ash/util/thread_pool.h"
#include "common.h"

int main() {
  using namespace ash;
  bench::print_banner(
      "Ablation F — chip-to-chip variation of aging and recovery",
      "population statistics behind the paper's single-chip numbers");

  constexpr int kChips = 20;
  tb::TestCase tc;
  tc.name = "variation";
  tc.phases = {tb::burn_in_phase(),
               tb::dc_stress_phase("AS110DC24", Celsius{110.0}, units::hours(24.0)),
               tb::recovery_phase("AR110N6", Volts{-0.3}, Celsius{110.0}, units::hours(6.0))};

  // Chips are independent: fan the population out over a worker pool (each
  // task owns its chip, test case copy and runner) and collect the metrics
  // in chip order, so the statistics below see the same value sequence as
  // the serial loop.
  struct ChipMetrics {
    double fresh_mhz;
    double degradation_pct;
    double recovered_pct;
  };
  util::ThreadPool pool(util::recommended_pool_size(kChips));
  const auto metrics = pool.parallel_for(kChips, [&](int i) {
    fpga::ChipConfig cc;
    cc.chip_id = i + 1;
    cc.seed = 0x7A0 + static_cast<std::uint64_t>(i);
    cc.ro_stages = 25;  // smaller CUT: more per-chip spread, faster run
    fpga::FpgaChip chip(cc);
    tb::TestCase my_tc = tc;
    my_tc.chip_id = cc.chip_id;
    tb::ExperimentRunner runner{tb::RunnerConfig{}};
    const auto log = runner.run(chip, my_tc);
    const double fresh_hz = log.records().front().frequency_hz;
    const double fresh_delay = log.records().front().delay_s;
    const auto stress_f = log.frequency_series("AS110DC24");
    return ChipMetrics{
        fresh_hz / 1e6,
        100.0 * (1.0 - stress_f.back().value / fresh_hz),
        100.0 * core::recovered_fraction(log.delay_series("AR110N6"),
                                         fresh_delay)};
  });
  std::vector<double> fresh_mhz;
  std::vector<double> degradation_pct;
  std::vector<double> recovered_pct;
  for (const auto& m : metrics) {
    fresh_mhz.push_back(m.fresh_mhz);
    degradation_pct.push_back(m.degradation_pct);
    recovered_pct.push_back(m.recovered_pct);
  }

  const auto row = [&](const char* name, std::vector<double> xs) {
    return std::vector<std::string>{
        name,
        fmt_fixed(mean(xs), 2),
        fmt_fixed(stddev(xs), 2),
        fmt_fixed(percentile(xs, 5.0), 2),
        fmt_fixed(percentile(xs, 95.0), 2),
    };
  };
  Table t({"metric (20 chips)", "mean", "sigma", "p5", "p95"});
  t.add_row(row("fresh frequency (MHz)", fresh_mhz));
  t.add_row(row("24 h DC degradation (%)", degradation_pct));
  t.add_row(row("AR110N6 recovered (%)", recovered_pct));
  std::printf("%s\n", t.render().c_str());

  Table s({"observation", "implication"});
  s.add_row({"fresh-frequency spread >> degradation spread",
             "absolute frequency is a bad aging metric"});
  s.add_row({"recovered-fraction spread is small",
             "the paper's Eq. (16) normalization transfers across chips"});
  std::printf("%s\n", s.render().c_str());
  return 0;
}
