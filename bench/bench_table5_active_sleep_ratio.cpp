/// bench_table5_active_sleep_ratio — reproduces Table 5 of the paper.
///
/// "Ratio of active vs. sleep time": chip 5 is recovered after 24 h of
/// stress (AR110N6) and again after being re-stressed for 48 h (AR110N12).
/// Both rounds use alpha = 4; the paper's finding is that the same design-
/// margin-relaxed parameter is achieved despite the different absolute
/// stress — the ratio, not the duration, is what matters.

#include <cmath>
#include <cstdio>

#include "ash/core/metrics.h"
#include "ash/util/table.h"
#include "common.h"

int main() {
  using namespace ash;
  bench::print_banner(
      "Table 5 — same alpha = 4, different stress durations (chip 5)",
      "AR110N6 and AR110N12 achieve the same margin-relaxed parameter");

  const auto campaign = bench::run_paper_campaign();
  const auto& chip5 = campaign.chip(5);

  // Round 2's "fresh" reference: the chip state right after round 1's
  // recovery (start of AS110DC48), because round 1's permanent damage is
  // part of round 2's baseline.
  const double fresh1 = chip5.fresh_delay_s;
  const double fresh2 =
      chip5.log.delay_series("AS110DC48").front().value;

  const auto rec6 = chip5.log.delay_series("AR110N6");
  const auto rec12 = chip5.log.delay_series("AR110N12");
  const double relaxed6 = core::design_margin_relaxed(rec6, fresh1);
  const double relaxed12 = core::design_margin_relaxed(rec12, fresh2);

  Table t({"round", "stress", "sleep", "alpha", "margin relaxed"});
  t.add_row({"1", "24 h @110C DC", "6 h @110C/-0.3V", "4",
             fmt_percent(relaxed6, 1)});
  t.add_row({"2", "48 h @110C DC", "12 h @110C/-0.3V", "4",
             fmt_percent(relaxed12, 1)});
  std::printf("%s\n", t.render().c_str());

  Table s({"check", "paper", "measured"});
  s.add_row({"same margin relaxed across rounds", "yes (Table 5)",
             std::abs(relaxed6 - relaxed12) < 0.04 ? "yes" : "NO"});
  s.add_row({"difference", "-",
             fmt_percent(std::abs(relaxed6 - relaxed12), 1)});
  std::printf("%s\n", s.render().c_str());
  return 0;
}
