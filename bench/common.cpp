#include "common.h"

#include <cstdio>
#include <stdexcept>

#include "ash/core/metrics.h"

namespace ash::bench {

const ChipRun& Campaign::chip(int id) const {
  for (const auto& c : chips) {
    if (c.chip_id == id) return c;
  }
  throw std::out_of_range("Campaign::chip: unknown chip id");
}

Campaign run_paper_campaign(int stages) {
  Campaign campaign;
  tb::ExperimentRunner runner{tb::RunnerConfig{}};
  for (const auto& test_case : tb::paper_campaign()) {
    fpga::ChipConfig cc;
    cc.chip_id = test_case.chip_id;
    cc.seed = 0x40A0 + static_cast<std::uint64_t>(test_case.chip_id);
    cc.ro_stages = stages;
    fpga::FpgaChip chip(cc);

    ChipRun run;
    run.chip_id = test_case.chip_id;
    run.log = runner.run(chip, test_case);
    run.fresh_delay_s = run.log.records().front().delay_s.value();
    run.fresh_frequency_hz = run.log.records().front().frequency_hz.value();
    campaign.chips.push_back(std::move(run));
  }
  return campaign;
}

Series delay_change_ns(const ChipRun& run, const std::string& phase) {
  const Series delay = run.log.delay_series(phase);
  return core::delay_change_series(delay, run.fresh_delay_s)
      .mapped([](double v) { return v * 1e9; });
}

Series degradation_percent(const ChipRun& run, const std::string& phase) {
  const Series freq = run.log.frequency_series(phase);
  return core::frequency_degradation_series(freq, run.fresh_frequency_hz)
      .mapped([](double v) { return v * 100.0; });
}

Series recovered_delay_ns(const ChipRun& run, const std::string& phase) {
  return core::recovered_delay_series(run.log.delay_series(phase))
      .mapped([](double v) { return v * 1e9; });
}

void print_banner(const std::string& name, const std::string& paper_claim) {
  std::printf("================================================================\n");
  std::printf("%s\n", name.c_str());
  std::printf("paper: %s\n", paper_claim.c_str());
  std::printf("================================================================\n");
}

}  // namespace ash::bench
