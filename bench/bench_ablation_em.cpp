/// bench_ablation_em — combined BTI + EM aging under the recovery policies.
///
/// The paper flags electromigration as a limitation of its first-order
/// model.  This ablation closes the loop: does hot rejuvenation (110 degC
/// sleeps) burn interconnect life?  EM is current-driven, so power-gated
/// sleep carries no current: the answer — quantified below — is that sleep
/// schedules *extend* EM life through duty reduction, and system lifetime
/// becomes min(BTI-limited, EM-limited).

#include <cstdio>

#include "ash/bti/closed_form.h"
#include "ash/bti/electromigration.h"
#include "ash/util/constants.h"
#include "ash/util/table.h"
#include "common.h"

int main() {
  using namespace ash;
  bench::print_banner(
      "Ablation D — electromigration under self-healing schedules",
      "hot sleep is EM-free (no current); duty reduction extends EM life");

  constexpr double kYear = 365.25 * 86400.0;
  const double horizon = 5.0 * kYear;
  const double cycle = hours(30.0);
  const double mission_temp_c = 80.0;
  const double bti_margin_v = 9.5e-3;

  struct Policy {
    const char* name;
    double alpha;      // active/sleep ratio; <=0 means always-on
    double sleep_temp_c;
    double sleep_v;
  };
  const Policy policies[] = {
      {"always-on", -1.0, 0.0, 0.0},
      {"passive sleep (45C, 0V)", 4.0, 45.0, 0.0},
      {"deep rejuvenation (110C, -0.3V)", 4.0, 110.0, -0.3},
      {"deep rejuvenation, alpha=2", 2.0, 110.0, -0.3},
  };

  Table t({"policy", "BTI end (mV)", "BTI margin hit", "EM drift",
           "EM life (y)", "system lifetime"});
  for (const auto& p : policies) {
    bti::ClosedFormAger bti_ager(
        bti::ClosedFormParameters::from_td(bti::default_td_parameters()));
    bti::EmInterconnect em{bti::EmParameters{}};

    const auto active = bti::ac_stress(Volts{1.2}, Celsius{mission_temp_c});
    const auto sleep = bti::recovery(Volts{p.sleep_v}, Celsius{p.sleep_temp_c});
    const double active_span =
        p.alpha > 0.0 ? cycle * p.alpha / (1.0 + p.alpha) : cycle;
    const double sleep_span = cycle - active_span;

    double bti_hit_s = -1.0;
    double em_hit_s = -1.0;
    for (double t_now = 0.0; t_now < horizon; t_now += cycle) {
      bti_ager.evolve(active, Seconds{active_span});
      em.evolve(1.0, Kelvin{celsius(mission_temp_c)}, Seconds{active_span});
      if (bti_hit_s < 0.0 && bti_ager.delta_vth() >= bti_margin_v) {
        bti_hit_s = t_now + active_span;
      }
      if (em_hit_s < 0.0 && em.failed()) em_hit_s = t_now + active_span;
      if (p.alpha > 0.0) {
        bti_ager.evolve(sleep, Seconds{sleep_span});
        // Power-gated: zero current through the interconnect, whatever the
        // rejuvenation temperature.
        em.evolve(0.0, Kelvin{celsius(p.sleep_temp_c)}, Seconds{sleep_span});
      }
    }

    const double em_life_y =
        em.time_to_failure(p.alpha > 0.0 ? p.alpha / (1.0 + p.alpha) : 1.0,
                             Kelvin{celsius(mission_temp_c)}).value() /
        kYear;
    const auto fmt_hit = [&](double hit) {
      return hit < 0.0 ? ">" + fmt_fixed(horizon / kYear, 0) + " y"
                       : fmt_fixed(hit / kYear, 1) + " y";
    };
    const double system_hit =
        bti_hit_s < 0.0 ? (em_hit_s < 0.0 ? -1.0 : em_hit_s)
                        : (em_hit_s < 0.0 ? bti_hit_s
                                          : std::min(bti_hit_s, em_hit_s));
    t.add_row({p.name, fmt_fixed(bti_ager.delta_vth() * 1e3, 2),
               fmt_hit(bti_hit_s), fmt_percent(em.drift(), 1),
               fmt_fixed(em_life_y + horizon / kYear, 0), fmt_hit(system_hit)});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf(
      "reading: the always-on arm is BTI-limited long before EM matters;\n"
      "deep rejuvenation removes the BTI limit AND slows EM by the duty\n"
      "factor — the paper's optimism about ignoring EM is justified for\n"
      "power-gated sleep (it would not be for clock-gated 'sleep' that\n"
      "keeps current flowing).\n");
  return 0;
}
