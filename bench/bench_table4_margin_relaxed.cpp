/// bench_table4_margin_relaxed — reproduces Table 4 of the paper.
///
/// "Design margin relaxed parameter" per recovery condition.  Definition
/// (see ash::core::metrics.h): RD(end) / M with the design margin
/// M = 1.25 x DeltaTd(stress end).  The paper's headline pair falls out of
/// this one definition: the best case (110 degC, -0.3 V) recovers ~90 % of
/// the damage = margin relaxed ~72.4 %; all accelerated cases come back to
/// within ~90 % of the original margin.

#include <cstdio>

#include "ash/core/metrics.h"
#include "ash/util/table.h"
#include "common.h"

int main() {
  using namespace ash;
  bench::print_banner(
      "Table 4 — design-margin-relaxed parameter per recovery condition",
      "best case 72.4%; all accelerated cases within ~90% of original margin");

  const auto campaign = bench::run_paper_campaign();
  struct Row {
    const char* phase;
    int chip;
    const char* paper_note;
  };
  const Row rows[] = {
      {"R20Z6", 2, "passive baseline (low)"},
      {"AR20N6", 3, ">= ~90% recovered"},
      {"AR110Z6", 4, ">= ~90% recovered"},
      {"AR110N6", 5, "best: 72.4% margin relaxed"},
  };

  Table t({"case", "recovered fraction", "margin relaxed (paper)",
           "margin relaxed (measured)"});
  for (const auto& r : rows) {
    const auto& run = campaign.chip(r.chip);
    const auto delay = run.log.delay_series(r.phase);
    const double frac = core::recovered_fraction(delay, run.fresh_delay_s);
    const double relaxed =
        core::design_margin_relaxed(delay, run.fresh_delay_s);
    t.add_row({r.phase, fmt_percent(frac, 1),
               std::string(r.paper_note),
               fmt_percent(relaxed, 1)});
  }
  std::printf("%s\n", t.render().c_str());

  const auto& best = campaign.chip(5);
  const double best_frac = core::recovered_fraction(
      best.log.delay_series("AR110N6"), best.fresh_delay_s);
  Table s({"headline", "paper", "measured"});
  s.add_row({"best-case margin relaxed", "72.4%",
             fmt_percent(core::design_margin_relaxed(
                             best.log.delay_series("AR110N6"),
                             best.fresh_delay_s),
                         1)});
  s.add_row({"best-case recovered (within original margin)", "~90%",
             fmt_percent(best_frac, 1)});
  std::printf("%s\n", s.render().c_str());
  return 0;
}
