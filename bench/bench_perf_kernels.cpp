/// bench_perf_kernels — google-benchmark timings of the simulator kernels.
///
/// Not a paper figure: this measures the library's own hot paths so
/// regressions in simulation throughput are visible.  Covered kernels:
/// trap-ensemble evolution, closed-form ager segments, RO delay
/// evaluation, full-chip aging steps, thermal steady-state solves and a
/// multi-core scheduling interval.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "ash/bti/closed_form.h"
#include "ash/bti/trap_ensemble.h"
#include "ash/fpga/chip.h"
#include "ash/mc/system.h"
#include "ash/obs/profile.h"
#include "ash/util/constants.h"

namespace {

using namespace ash;

void BM_TrapEnsembleEvolve(benchmark::State& state) {
  bti::TrapEnsemble e(bti::default_td_parameters(), 1);
  const auto cond = bti::dc_stress(1.2, 110.0);
  for (auto _ : state) {
    e.evolve(cond, 60.0);
    benchmark::DoNotOptimize(e.delta_vth());
  }
}
BENCHMARK(BM_TrapEnsembleEvolve);

void BM_TrapEnsembleDeltaVth(benchmark::State& state) {
  bti::TrapEnsemble e(bti::default_td_parameters(), 1);
  e.evolve(bti::dc_stress(1.2, 110.0), hours(24.0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(e.delta_vth());
  }
}
BENCHMARK(BM_TrapEnsembleDeltaVth);

void BM_ClosedFormAgerCycle(benchmark::State& state) {
  bti::ClosedFormAger ager(
      bti::ClosedFormParameters::from_td(bti::default_td_parameters()));
  const auto stress = bti::dc_stress(1.2, 110.0);
  const auto heal = bti::recovery(-0.3, 110.0);
  for (auto _ : state) {
    ager.evolve(stress, hours(24.0));
    ager.evolve(heal, hours(6.0));
    benchmark::DoNotOptimize(ager.delta_vth());
  }
}
BENCHMARK(BM_ClosedFormAgerCycle);

void BM_RingOscillatorFrequency(benchmark::State& state) {
  fpga::ChipConfig cc;
  cc.ro_stages = static_cast<int>(state.range(0));
  fpga::FpgaChip chip(cc);
  for (auto _ : state) {
    benchmark::DoNotOptimize(chip.ro_frequency_hz(1.2, celsius(20.0)));
  }
}
BENCHMARK(BM_RingOscillatorFrequency)->Arg(15)->Arg(75);

void BM_ChipEvolveDcHour(benchmark::State& state) {
  fpga::ChipConfig cc;
  cc.ro_stages = static_cast<int>(state.range(0));
  fpga::FpgaChip chip(cc);
  const auto cond = bti::dc_stress(1.2, 110.0);
  for (auto _ : state) {
    chip.evolve(fpga::RoMode::kDcFrozen, cond, hours(1.0));
  }
}
BENCHMARK(BM_ChipEvolveDcHour)->Arg(15)->Arg(75);

void BM_ThermalSteadyState(benchmark::State& state) {
  const mc::Floorplan fp;
  const mc::ThermalModel model(fp, mc::ThermalConfig{});
  std::vector<double> powers(static_cast<std::size_t>(fp.node_count()), 8.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.solve_steady_state(powers));
  }
}
BENCHMARK(BM_ThermalSteadyState);

void BM_MulticoreSimMonth(benchmark::State& state) {
  mc::SystemConfig cfg;
  cfg.horizon_s = 30.0 * 86400.0;
  for (auto _ : state) {
    mc::HeaterAwareCircadianScheduler scheduler;
    benchmark::DoNotOptimize(mc::simulate_system(cfg, scheduler));
  }
}
BENCHMARK(BM_MulticoreSimMonth);

}  // namespace

/// BENCHMARK_MAIN() plus the ash::obs profile: the same run that times the
/// kernels also aggregates the in-library kernel timers, so the share
/// breakdown (where does a multicore month actually go?) prints alongside
/// the google-benchmark numbers.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ash::obs::enable_profiling(true);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  std::printf("\nin-library kernel profile (aggregated over all runs):\n%s",
              ash::obs::profile_table().c_str());
  return 0;
}
