/// bench_perf_kernels — google-benchmark timings of the simulator kernels.
///
/// Not a paper figure: this measures the library's own hot paths so
/// regressions in simulation throughput are visible.  Covered kernels:
/// trap-ensemble evolution, closed-form ager segments, RO delay
/// evaluation, full-chip aging steps, thermal steady-state solves and a
/// multi-core scheduling interval.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "ash/bti/batch_ensemble.h"
#include "ash/bti/closed_form.h"
#include "ash/bti/trap_ensemble.h"
#include "ash/fpga/chip.h"
#include "ash/mc/system.h"
#include "ash/obs/profile.h"
#include "ash/tb/experiment_runner.h"
#include "ash/tb/test_case.h"
#include "ash/util/constants.h"
#include "ash/util/random.h"

namespace {

using namespace ash;

void BM_TrapEnsembleEvolve(benchmark::State& state) {
  bti::TrapEnsemble e(bti::default_td_parameters(), 1);
  const auto cond = bti::dc_stress(Volts{1.2}, Celsius{110.0});
  for (auto _ : state) {
    e.evolve(cond, Seconds{60.0});
    benchmark::DoNotOptimize(e.delta_vth());
  }
}
BENCHMARK(BM_TrapEnsembleEvolve);

void BM_TrapEnsembleDeltaVth(benchmark::State& state) {
  bti::TrapEnsemble e(bti::default_td_parameters(), 1);
  e.evolve(bti::dc_stress(Volts{1.2}, Celsius{110.0}), Seconds{hours(24.0)});
  for (auto _ : state) {
    benchmark::DoNotOptimize(e.delta_vth());
  }
}
BENCHMARK(BM_TrapEnsembleDeltaVth);

void BM_ClosedFormAgerCycle(benchmark::State& state) {
  bti::ClosedFormAger ager(
      bti::ClosedFormParameters::from_td(bti::default_td_parameters()));
  const auto stress = bti::dc_stress(Volts{1.2}, Celsius{110.0});
  const auto heal = bti::recovery(Volts{-0.3}, Celsius{110.0});
  for (auto _ : state) {
    ager.evolve(stress, Seconds{hours(24.0)});
    ager.evolve(heal, Seconds{hours(6.0)});
    benchmark::DoNotOptimize(ager.delta_vth());
  }
}
BENCHMARK(BM_ClosedFormAgerCycle);

void BM_RingOscillatorFrequency(benchmark::State& state) {
  fpga::ChipConfig cc;
  cc.ro_stages = static_cast<int>(state.range(0));
  fpga::FpgaChip chip(cc);
  for (auto _ : state) {
    benchmark::DoNotOptimize(chip.ro_frequency_hz(Volts{1.2}, Kelvin{celsius(20.0)}).value());
  }
}
BENCHMARK(BM_RingOscillatorFrequency)->Arg(15)->Arg(75);

void BM_ChipEvolveDcHour(benchmark::State& state) {
  fpga::ChipConfig cc;
  cc.ro_stages = static_cast<int>(state.range(0));
  fpga::FpgaChip chip(cc);
  const auto cond = bti::dc_stress(Volts{1.2}, Celsius{110.0});
  for (auto _ : state) {
    chip.evolve(fpga::RoMode::kDcFrozen, cond, Seconds{hours(1.0)});
  }
}
BENCHMARK(BM_ChipEvolveDcHour)->Arg(15)->Arg(75);

void BM_BatchEnsembleEvolveNoisy(benchmark::State& state) {
  // One batch step of a homogeneous-kinetics population under a drifting
  // (never-repeating) condition — the regime where the per-chip engine
  // pays a full rate recomputation per member and the batch engine pays
  // one per class.
  const int chips = static_cast<int>(state.range(0));
  std::vector<bti::BatchMemberSpec> specs;
  Rng scales(0xC082);
  for (int m = 0; m < chips; ++m) {
    bti::TdParameters p = bti::default_td_parameters();
    p.delta_vth_mean_v = p.delta_vth_mean_v * std::exp(scales.normal(0.0, 0.05));
    specs.push_back({p, 0xBA7C});
  }
  bti::BatchEnsemble batch(specs, {});
  double temp_k = celsius(110.0);
  for (auto _ : state) {
    bti::OperatingCondition cond;
    cond.voltage_v = Volts{1.2};
    cond.temperature_k = Kelvin{temp_k};
    cond.gate_stress_duty = 1.0;
    batch.evolve(cond, Seconds{60.0});
    temp_k += 1e-4;  // unique condition every step
  }
  benchmark::DoNotOptimize(batch.delta_vth(0));
}
BENCHMARK(BM_BatchEnsembleEvolveNoisy)->Arg(256)->Arg(1024);

void BM_ThermalSteadyState(benchmark::State& state) {
  const mc::Floorplan fp;
  const mc::ThermalModel model(fp, mc::ThermalConfig{});
  std::vector<double> powers(static_cast<std::size_t>(fp.node_count()), 8.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.solve_steady_state(powers));
  }
}
BENCHMARK(BM_ThermalSteadyState);

void BM_MulticoreSimMonth(benchmark::State& state) {
  mc::SystemConfig cfg;
  cfg.horizon_s = Seconds{30.0 * 86400.0};
  for (auto _ : state) {
    mc::HeaterAwareCircadianScheduler scheduler;
    benchmark::DoNotOptimize(mc::simulate_system(cfg, scheduler));
  }
}
BENCHMARK(BM_MulticoreSimMonth);

double wall_ms(const std::chrono::steady_clock::time_point begin,
               const std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double, std::milli>(end - begin).count();
}

/// `--json` mode: run a fixed, deterministic workload with the in-library
/// kernel timers on and emit machine-readable numbers for the CI
/// perf-smoke gate (tools/check_perf_regression.py).  The workload covers
/// the three regimes that matter: the steady-state trap kernel (rate-cache
/// hits), the chip-5 runner campaign (chamber noise defeats the cache —
/// the honest end-to-end number) and a fixed-condition drive of the same
/// chip (cache-friendly end-to-end).
int run_json_mode(const std::string& path) {
  using clock = std::chrono::steady_clock;
  using namespace ash;
  obs::enable_profiling(true);
  obs::reset_profile();

  // Steady-state trap kernel: one condition, repeated steps.
  {
    bti::TrapEnsemble e(bti::default_td_parameters(), 1);
    const auto cond = bti::dc_stress(Volts{1.2}, Celsius{110.0});
    for (int i = 0; i < 200000; ++i) e.evolve(cond, Seconds{60.0});
    benchmark::DoNotOptimize(e.delta_vth());
  }

  // Repeated RO reads at a fixed operating point (cached path delays).
  {
    fpga::ChipConfig cc;
    cc.ro_stages = 75;
    fpga::FpgaChip chip(cc);
    double sum = 0.0;
    for (int i = 0; i < 20000; ++i) {
      sum += chip.ro_frequency_hz(Volts{1.2}, Kelvin{celsius(20.0)}).value();
    }
    benchmark::DoNotOptimize(sum);
  }

  // End-to-end chip-5 campaign through the full instrument stack.
  const tb::TestCase tc = tb::paper_campaign().at(4);
  double campaign_ms = 0.0;
  {
    fpga::ChipConfig cc;
    cc.chip_id = tc.chip_id;
    cc.seed = 0x40A0 + static_cast<std::uint64_t>(tc.chip_id);
    cc.ro_stages = 75;
    fpga::FpgaChip chip(cc);
    tb::ExperimentRunner runner{tb::RunnerConfig{}};
    const auto t0 = clock::now();
    const auto result = runner.run_campaign(chip, tc);
    campaign_ms = wall_ms(t0, clock::now());
    benchmark::DoNotOptimize(result.log.size());
  }

  // The same chip schedule driven at fixed per-phase conditions (no
  // chamber noise): what the trap kernel does when the rate cache can
  // actually hit.
  double fixed_drive_ms = 0.0;
  {
    fpga::ChipConfig cc;
    cc.chip_id = tc.chip_id;
    cc.seed = 0x40A0 + static_cast<std::uint64_t>(tc.chip_id);
    cc.ro_stages = 75;
    fpga::FpgaChip chip(cc);
    const auto t0 = clock::now();
    for (const auto& phase : tc.phases) {
      bti::OperatingCondition cond;
      cond.voltage_v = phase.supply_v;
      cond.temperature_k = Kelvin{celsius(phase.chamber_c.value())};
      cond.gate_stress_duty =
          phase.mode == fpga::RoMode::kAcOscillating ? phase.ac_duty
          : phase.mode == fpga::RoMode::kDcFrozen    ? 1.0
                                                     : 0.0;
      const int steps = std::max(
          1, phase.sample_every_s > Seconds{0.0}
                 ? static_cast<int>(phase.duration_s / phase.sample_every_s)
                 : 1);
      const double dt = phase.duration_s.value() / steps;
      for (int s = 0; s < steps; ++s) {
        chip.evolve(phase.mode, cond, Seconds{dt});
        // Read at the nominal measurement rail (sleep phases bias the
        // core below threshold; the counter always runs at 1.2 V).
        benchmark::DoNotOptimize(
            chip.ro_frequency_hz(Volts{1.2}, cond.temperature_k).value());
      }
    }
    fixed_drive_ms = wall_ms(t0, clock::now());
  }

  // One multicore month exercises the mc.* kernel split.
  {
    mc::SystemConfig cfg;
    cfg.horizon_s = Seconds{30.0 * 86400.0};
    mc::HeaterAwareCircadianScheduler scheduler;
    benchmark::DoNotOptimize(mc::simulate_system(cfg, scheduler));
  }

  // Population sweep (the acceptance workload): 1024 chips of one
  // kinetics class (shared seed, per-chip DeltaVth corner scale) driven
  // through a noisy fleet campaign — drifting chamber temperature (every
  // interval a fresh condition), periodic AC measurement wakes, a steady
  // recovery tail, and a whole-fleet margin read every 16 steps.  Three
  // passes over the identical schedule: 1024 independent TrapEnsembles,
  // the batch engine in exact mode (asserted bit-identical), and the
  // batch engine with fast_exp.
  constexpr int kPopChips = 1024;
  double pop_independent_ms = 0.0;
  double pop_batch_ms = 0.0;
  double pop_fast_ms = 0.0;
  int pop_steps = 0;
  {
    struct PopStep {
      bti::OperatingCondition condition;
      double dt_s = 0.0;
      bool read_fleet = false;
    };
    std::vector<PopStep> schedule;
    for (int s = 0; s < 360; ++s) {
      PopStep step;
      step.condition.voltage_v = Volts{1.2};
      step.condition.temperature_k = Kelvin{celsius(110.0) + 0.011 * s};
      step.condition.gate_stress_duty = 1.0;
      step.dt_s = 60.0;
      step.read_fleet = (s % 16) == 15;
      schedule.push_back(step);
      if ((s % 20) == 19) {
        PopStep wake;
        wake.condition = bti::ac_stress(Volts{1.2}, Celsius{110.0}, 0.5);
        wake.dt_s = 2.7;
        schedule.push_back(wake);
      }
    }
    for (int s = 0; s < 96; ++s) {
      PopStep step;
      step.condition = bti::recovery(Volts{-0.3}, Celsius{110.0});
      step.dt_s = 600.0;
      step.read_fleet = (s % 16) == 15;
      schedule.push_back(step);
    }
    pop_steps = static_cast<int>(schedule.size());

    std::vector<bti::BatchMemberSpec> specs;
    Rng scales(0x90F7);
    for (int m = 0; m < kPopChips; ++m) {
      bti::TdParameters p = bti::default_td_parameters();
      p.delta_vth_mean_v = p.delta_vth_mean_v * std::exp(scales.normal(0.0, 0.05));
      specs.push_back({p, 0xF1EE7});
    }

    // Pass 1: independent per-chip engines.  Profiling off so the huge
    // one-shot-condition call count does not skew the
    // bti.trap_ensemble.evolve row the perf gate compares.
    std::vector<double> independent_delta(kPopChips, 0.0);
    obs::enable_profiling(false);
    {
      std::vector<bti::TrapEnsemble> fleet;
      fleet.reserve(kPopChips);
      for (const auto& spec : specs) fleet.emplace_back(spec.params, spec.seed);
      const auto t0 = clock::now();
      double acc = 0.0;
      for (const auto& step : schedule) {
        for (auto& chip : fleet) chip.evolve(step.condition, Seconds{step.dt_s});
        if (step.read_fleet) {
          for (const auto& chip : fleet) acc += chip.delta_vth();
        }
      }
      pop_independent_ms = wall_ms(t0, clock::now());
      benchmark::DoNotOptimize(acc);
      for (int m = 0; m < kPopChips; ++m) {
        independent_delta[static_cast<std::size_t>(m)] =
            fleet[static_cast<std::size_t>(m)].delta_vth();
      }
    }
    obs::enable_profiling(true);

    // Pass 2: batch engine, exact mode (this is the bti.batch.evolve row).
    {
      bti::BatchEnsemble batch(specs, {});
      const auto t0 = clock::now();
      double acc = 0.0;
      for (const auto& step : schedule) {
        batch.evolve(step.condition, Seconds{step.dt_s});
        if (step.read_fleet) {
          for (int m = 0; m < kPopChips; ++m) acc += batch.delta_vth(m);
        }
      }
      pop_batch_ms = wall_ms(t0, clock::now());
      benchmark::DoNotOptimize(acc);
      for (int m = 0; m < kPopChips; ++m) {
        if (batch.delta_vth(m) != independent_delta[static_cast<std::size_t>(m)]) {
          std::fprintf(stderr,
                       "bench_perf_kernels: batch exact mode diverged from "
                       "independent runs at chip %d\n",
                       m);
          return 1;
        }
      }
    }

    // Pass 3: batch engine, fast physics.
    {
      bti::BatchConfig fast;
      fast.fast_exp = true;
      bti::BatchEnsemble batch(specs, fast);
      const auto t0 = clock::now();
      double acc = 0.0;
      for (const auto& step : schedule) {
        batch.evolve(step.condition, Seconds{step.dt_s});
        if (step.read_fleet) {
          for (int m = 0; m < kPopChips; ++m) acc += batch.delta_vth(m);
        }
      }
      pop_fast_ms = wall_ms(t0, clock::now());
      benchmark::DoNotOptimize(acc);
      double worst = 0.0;
      for (int m = 0; m < kPopChips; ++m) {
        const double exact = independent_delta[static_cast<std::size_t>(m)];
        worst = std::max(worst, std::abs(batch.delta_vth(m) - exact) / exact);
      }
      std::printf("population fast-exp max relative deviation: %.2e\n", worst);
    }
  }

  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "bench_perf_kernels: cannot write %s\n",
                 path.c_str());
    return 1;
  }
  os << "{\n  \"kernels\": [\n";
  const auto profiles = obs::profile_snapshot();
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    const auto& p = profiles[i];
    char line[256];
    std::snprintf(line, sizeof(line),
                  "    {\"name\": \"%s\", \"calls\": %llu, \"total_ns\": "
                  "%llu, \"ns_per_call\": %.1f}%s\n",
                  obs::to_string(p.kernel),
                  static_cast<unsigned long long>(p.calls),
                  static_cast<unsigned long long>(p.total_ns),
                  static_cast<double>(p.total_ns) /
                      static_cast<double>(p.calls),
                  i + 1 < profiles.size() ? "," : "");
    os << line;
  }
  char tail[560];
  std::snprintf(tail, sizeof(tail),
                "  ],\n  \"chip5_campaign_wall_ms\": %.1f,\n"
                "  \"chip5_fixed_drive_wall_ms\": %.1f,\n"
                "  \"population_chips\": %d,\n"
                "  \"population_steps\": %d,\n"
                "  \"population_independent_wall_ms\": %.1f,\n"
                "  \"population_batch_wall_ms\": %.1f,\n"
                "  \"population_batch_fast_wall_ms\": %.1f,\n"
                "  \"population_speedup_exact\": %.2f,\n"
                "  \"population_speedup_fast\": %.2f\n}\n",
                campaign_ms, fixed_drive_ms, kPopChips, pop_steps,
                pop_independent_ms, pop_batch_ms, pop_fast_ms,
                pop_independent_ms / pop_batch_ms,
                pop_independent_ms / pop_fast_ms);
  os << tail;
  std::printf("wrote %s\n%s", path.c_str(), obs::profile_table().c_str());
  std::printf("chip5 campaign: %.1f ms   fixed drive: %.1f ms\n",
              campaign_ms, fixed_drive_ms);
  std::printf(
      "population (%d chips, %d steps): independent %.1f ms   batch %.1f ms "
      "(%.1fx)   fast %.1f ms (%.1fx)\n",
      kPopChips, pop_steps, pop_independent_ms, pop_batch_ms,
      pop_independent_ms / pop_batch_ms, pop_fast_ms,
      pop_independent_ms / pop_fast_ms);
  return 0;
}

}  // namespace

/// BENCHMARK_MAIN() plus the ash::obs profile: the same run that times the
/// kernels also aggregates the in-library kernel timers, so the share
/// breakdown (where does a multicore month actually go?) prints alongside
/// the google-benchmark numbers.  `--json FILE` (default
/// BENCH_kernels.json) switches to the fixed CI workload instead; the
/// custom flag is stripped before benchmark::Initialize sees it.
int main(int argc, char** argv) {
  std::string json_path;
  bool json_mode = false;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json_mode = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') json_path = argv[++i];
    } else if (arg.rfind("--json=", 0) == 0) {
      json_mode = true;
      json_path = arg.substr(7);
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  if (json_mode) {
    return run_json_mode(json_path.empty() ? "BENCH_kernels.json"
                                           : json_path);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ash::obs::enable_profiling(true);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  std::printf("\nin-library kernel profile (aggregated over all runs):\n%s",
              ash::obs::profile_table().c_str());
  return 0;
}
