/// bench_fig10_multicore — reproduces the Figure 10 / Section 6.2 study.
///
/// "Illustration of multi-core system self-healing": an 8-core + L3
/// floorplan where sleeping cores are heated by their active neighbours.
/// The bench compares four scheduling policies over a 2-year horizon and
/// reports the observables the paper argues about: the sleeping-core
/// temperature (heater effect), mean/worst aging, TDP behaviour and
/// time-to-margin lifetime.

#include <cstdio>

#include "ash/mc/system.h"
#include "ash/util/table.h"
#include "common.h"

int main() {
  using namespace ash;
  bench::print_banner(
      "Figure 10 — multi-core self-healing with on-chip heaters",
      "active neighbours heat sleeping cores; circadian scheduling extends "
      "lifetime and respects TDP");

  mc::SystemConfig cfg;
  cfg.horizon_s = Seconds{2.0 * 365.25 * 86400.0};
  cfg.margin_delta_vth_v = Volts{9e-3};

  mc::AllActiveScheduler all_active;
  mc::RoundRobinSleepScheduler rr_passive(/*rejuvenate=*/false);
  mc::RoundRobinSleepScheduler rr_active(/*rejuvenate=*/true);
  mc::HeaterAwareCircadianScheduler circadian;
  mc::Scheduler* schedulers[] = {&all_active, &rr_passive, &rr_active,
                                 &circadian};

  Table t({"policy", "sleep temp (degC)", "mean aging (mV)",
           "worst aging (mV)", "TDP violations", "time-to-margin (days)",
           "throughput (core-y)"});
  double baseline_ttm = 0.0;
  double circadian_ttm = 0.0;
  for (auto* s : schedulers) {
    const auto r = simulate_system(cfg, *s);
    if (s == &all_active) baseline_ttm = r.time_to_first_margin_s.value();
    if (s == &circadian) circadian_ttm = r.time_to_first_margin_s.value();
    t.add_row({r.scheduler,
               std::isnan(r.mean_sleep_temp_c.value())
                   ? std::string("-")
                   : fmt_fixed(r.mean_sleep_temp_c.value(), 1),
               fmt_fixed(r.mean_end_delta_vth_v.value() * 1e3, 2),
               fmt_fixed(r.worst_end_delta_vth_v.value() * 1e3, 2),
               strformat("%d", r.tdp_violations),
               r.margin_exceeded
                   ? fmt_fixed(r.time_to_first_margin_s.value() / 86400.0, 0)
                   : ">" + fmt_fixed(cfg.horizon_s.value() / 86400.0, 0) +
                         " (censored)",
               fmt_fixed(r.throughput_core_s.value() / (365.25 * 86400.0), 1)});
  }
  std::printf("%s\n", t.render().c_str());

  Table s({"check", "paper", "measured"});
  s.add_row({"sleeping cores heated well above 45 degC ambient",
             "yes ('on-chip heaters')", "see sleep temp column"});
  s.add_row({"circadian lifetime vs no-sleep baseline", "huge benefit",
             strformat("%.1fx (censored lower bound)",
                       circadian_ttm / baseline_ttm)});
  std::printf("%s\n", s.render().c_str());
  return 0;
}
