/// bench_ablation_pbti — technology sensitivity: NBTI/PBTI asymmetry.
///
/// The paper's Sec. 1 notes PBTI "has been negligible in previous
/// technologies" (SiON gates) but "is rapidly becoming an important
/// reliability issue with the introduction of high-k and metal gates".
/// The virtual fabric makes the sweep trivial: scale PBTI (NMOS) aging
/// relative to NBTI and watch the measured DC/AC degradation move —
/// pass-transistor LUT fabrics are NMOS-rich, so their wearout is
/// PBTI-dominated at high-k-era ratios.

#include <cstdio>

#include "ash/fpga/chip.h"
#include "ash/util/constants.h"
#include "ash/util/table.h"
#include "common.h"

int main() {
  using namespace ash;
  bench::print_banner(
      "Ablation J — NBTI/PBTI asymmetry across technology generations",
      "PT-LUT fabrics are NMOS-rich: wearout tracks the PBTI share");

  Table t({"PBTI/NBTI ratio", "technology analogue", "DC 24 h (%)",
           "AC 24 h (%)", "AC/DC"});
  const double room = celsius(20.0);
  struct Row {
    double ratio;
    const char* analogue;
  };
  for (const auto& r :
       {Row{0.1, "SiON, PBTI negligible"}, Row{0.3, "late SiON"},
        Row{0.6, "early high-k"}, Row{1.0, "40 nm calibration (paper)"},
        Row{1.5, "PBTI-dominant stack"}}) {
    fpga::ChipConfig cc;
    cc.seed = 21;
    cc.ro_stages = 25;
    cc.pbti_amplitude_ratio = r.ratio;
    fpga::FpgaChip dc_chip(cc);
    fpga::FpgaChip ac_chip(cc);
    const double f_dc = dc_chip.ro_frequency_hz(Volts{1.2}, Kelvin{room}).value();
    const double f_ac = ac_chip.ro_frequency_hz(Volts{1.2}, Kelvin{room}).value();
    dc_chip.evolve(fpga::RoMode::kDcFrozen, bti::dc_stress(Volts{1.2}, Celsius{110.0}),
                   Seconds{hours(24.0)});
    ac_chip.evolve(fpga::RoMode::kAcOscillating, bti::ac_stress(Volts{1.2}, Celsius{110.0}),
                   Seconds{hours(24.0)});
    const double deg_dc = 1.0 - dc_chip.ro_frequency_hz(Volts{1.2}, Kelvin{room}).value() / f_dc;
    const double deg_ac = 1.0 - ac_chip.ro_frequency_hz(Volts{1.2}, Kelvin{room}).value() / f_ac;
    t.add_row({fmt_fixed(r.ratio, 1), r.analogue, fmt_fixed(deg_dc * 100, 2),
               fmt_fixed(deg_ac * 100, 2), fmt_fixed(deg_ac / deg_dc, 2)});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf(
      "reading: had the paper's parts been SiON-era (ratio ~0.1-0.3), the\n"
      "same 24 h stress would have shown well under 1%% degradation — the\n"
      "accelerated-recovery story matters *because* high-k brought PBTI\n"
      "into play on exactly the NMOS-rich structures FPGAs are made of.\n");
  return 0;
}
