/// bench_ablation_sensor — silicon-odometer accuracy study.
///
/// Reactive recovery (Sec. 2.2) "needs to track changing threshold
/// voltages"; this ablation quantifies how well the on-chip differential
/// sensor (refs. [7][8]) does that across stress levels, and what its
/// residual error means for reactive trigger thresholds.

#include <cmath>
#include <cstdio>
#include <vector>

#include "ash/fpga/odometer.h"
#include "ash/util/constants.h"
#include "ash/util/stats.h"
#include "ash/util/table.h"
#include "common.h"

int main() {
  using namespace ash;
  bench::print_banner(
      "Ablation G — silicon-odometer tracking accuracy",
      "the sensor reactive recovery would rely on: bias and noise budget");

  const double room = celsius(20.0);

  std::printf("--- tracking across stress exposure ---\n");
  Table t({"stress (h @110C DC)", "true degradation", "sensor estimate",
           "error (pp)"});
  fpga::SiliconOdometer odo{fpga::OdometerConfig{}};
  double elapsed = 0.0;
  for (double target_h : {1.0, 3.0, 6.0, 12.0, 24.0, 48.0}) {
    odo.mission(bti::dc_stress(Volts{1.2}, Celsius{110.0}), Seconds{hours(target_h) - elapsed});
    elapsed = hours(target_h);
    const double truth = odo.true_degradation(Kelvin{room});
    const auto r = odo.read(Kelvin{room});
    t.add_row({fmt_fixed(target_h, 0), fmt_percent(truth, 2),
               fmt_percent(r.degradation_estimate, 2),
               fmt_fixed((r.degradation_estimate - truth) * 100.0, 3)});
  }
  std::printf("%s\n", t.render().c_str());

  std::printf("--- read-noise statistics (fixed aging state) ---\n");
  std::vector<double> reads;
  for (int i = 0; i < 400; ++i) {
    reads.push_back(odo.read(Kelvin{room}).degradation_estimate * 100.0);
  }
  Table n({"statistic", "value"});
  n.add_row({"mean estimate (%)", fmt_fixed(mean(reads), 3)});
  n.add_row({"sigma (pp)", fmt_fixed(stddev(reads), 3)});
  n.add_row({"p99 - p1 spread (pp)",
             fmt_fixed(percentile(reads, 99.0) - percentile(reads, 1.0), 3)});
  std::printf("%s\n", n.render().c_str());

  std::printf("--- sensor tracks recovery too ---\n");
  Table h({"phase", "sensor estimate"});
  h.add_row({"after 48 h stress", fmt_percent(reads.back() / 100.0, 2)});
  odo.sleep(bti::recovery(Volts{-0.3}, Celsius{110.0}), Seconds{hours(12.0)});
  h.add_row({"after 12 h deep rejuvenation",
             fmt_percent(odo.read(Kelvin{room}).degradation_estimate, 2)});
  std::printf("%s\n", h.render().c_str());

  std::printf(
      "reading: sensor sigma of a few hundredths of a point means reactive\n"
      "thresholds can be set within ~0.1%% of margin without false triggers\n"
      "— tracking itself is not the obstacle; the paper's argument against\n"
      "reactive recovery is its schedule unpredictability, not sensing.\n");
  return 0;
}
