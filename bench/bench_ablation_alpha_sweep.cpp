/// bench_ablation_alpha_sweep — knob-sensitivity ablation for Eq. (12).
///
/// Eq. (12) parameterizes the cyclic delay shift by alpha (active/sleep
/// ratio), the sleep voltage and the sleep temperature.  This bench sweeps
/// each knob with the other two fixed and reports the 6-h recovered
/// fraction of a 24 h reference stress plus the rejuvenation planner's
/// cheapest feasible plan — the quantitative version of "by tuning alpha
/// properly, both components can decrease".

#include <cstdio>

#include "ash/bti/closed_form.h"
#include "ash/core/planner.h"
#include "ash/util/constants.h"
#include "ash/util/table.h"
#include "common.h"

int main() {
  using namespace ash;
  bench::print_banner(
      "Ablation B — alpha / voltage / temperature knob sweeps (Eq. (12))",
      "recovery deepens with sleep share, negative bias and temperature");

  const bti::ClosedFormModel model(
      bti::ClosedFormParameters::from_td(bti::default_td_parameters()));
  const double t1 = hours(24.0);

  std::printf("--- alpha sweep (sleep = 24 h / alpha @ 110 degC, -0.3 V) ---\n");
  Table a({"alpha", "sleep (h)", "recovered fraction"});
  for (double alpha : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {
    const double t2 = t1 / alpha;
    const double rec =
        1.0 - model.remaining_fraction(Seconds{t1}, Seconds{t2}, bti::recovery(Volts{-0.3}, Celsius{110.0}));
    a.add_row({fmt_fixed(alpha, 0), fmt_fixed(to_hours(t2), 1),
               fmt_percent(rec, 1)});
  }
  std::printf("%s\n", a.render().c_str());

  std::printf("--- voltage sweep (6 h sleep @ 20 degC) ---\n");
  Table v({"sleep voltage (V)", "recovered fraction"});
  for (double volt : {0.0, -0.1, -0.2, -0.3, -0.4}) {
    const double rec = 1.0 - model.remaining_fraction(
                                 Seconds{t1}, Seconds{hours(6.0)}, bti::recovery(Volts{volt}, Celsius{20.0}));
    v.add_row({fmt_fixed(volt, 1), fmt_percent(rec, 1)});
  }
  std::printf("%s\n", v.render().c_str());

  std::printf("--- temperature sweep (6 h sleep @ 0 V) ---\n");
  Table temp({"sleep temp (degC)", "recovered fraction"});
  for (double t_c : {20.0, 45.0, 65.0, 85.0, 100.0, 110.0}) {
    const double rec = 1.0 - model.remaining_fraction(
                                 Seconds{t1}, Seconds{hours(6.0)}, bti::recovery(Volts{0.0}, Celsius{t_c}));
    temp.add_row({fmt_fixed(t_c, 0), fmt_percent(rec, 1)});
  }
  std::printf("%s\n", temp.render().c_str());

  std::printf("--- rejuvenation planner: cheapest plan per target ---\n");
  Table p({"target recovered", "feasible", "voltage (V)", "temp (degC)",
           "sleep (h)", "cost (rel)"});
  for (double target : {0.5, 0.7, 0.85, 0.9, 0.95}) {
    core::PlannerConfig cfg;
    cfg.target_recovered_fraction = target;
    const auto plan = core::plan_recovery(cfg);
    p.add_row({fmt_percent(target, 0), plan.feasible ? "yes" : "no",
               plan.feasible ? fmt_fixed(plan.voltage_v.value(), 2) : "-",
               plan.feasible ? fmt_fixed(plan.temp_c.value(), 0) : "-",
               plan.feasible ? fmt_fixed(to_hours(plan.sleep_s.value()), 2) : "-",
               plan.feasible ? strformat("%.0f", plan.cost) : "-"});
  }
  std::printf("%s\n", p.render().c_str());
  return 0;
}
