/// bench_ablation_model_selection — "Physics Matters": TD vs RD.
///
/// Ref. [15], the device model the paper builds on, argued that
/// Trapping/Detrapping beats the classic Reaction-Diffusion picture
/// because only TD explains *recovery*.  This ablation reruns that
/// argument on the virtual campaign: both models fit the accelerated
/// stress data almost equally well (a power law mimics a log over two
/// decades), but RD's universal recovery curve is condition-blind — it
/// cannot produce the spread the four sleep conditions measure, which is
/// the very effect the paper engineers.

#include <cmath>
#include <cstdio>

#include "ash/bti/reaction_diffusion.h"
#include "ash/core/metrics.h"
#include "ash/core/model_fit.h"
#include "ash/util/constants.h"
#include "ash/util/table.h"
#include "common.h"

int main() {
  using namespace ash;
  bench::print_banner(
      "Ablation L — model selection: Trapping/Detrapping vs Reaction-"
      "Diffusion",
      "stress data cannot separate the models; recovery data rejects RD");

  const auto campaign = bench::run_paper_campaign();

  // --- Stress-side fits: both models vs the measured AS110DC24 curve.
  const auto& chip2 = campaign.chip(2);
  const auto dtd = core::delay_change_series(
      chip2.log.delay_series("AS110DC24"), chip2.fresh_delay_s);
  const auto td_fit = core::ModelFitter().fit_stress(dtd);
  const auto rd_fit = bti::fit_rd_stress(dtd, bti::RdParameters{}, true);

  Table s({"model", "law", "fit R^2 (stress)"});
  s.add_row({"TD (ref [15], this paper)",
             "beta*ln(1 + C t)", fmt_fixed(td_fit.r_squared, 4)});
  s.add_row({"RD (classic)",
             strformat("A*t^%.3f", rd_fit.time_exponent),
             fmt_fixed(rd_fit.r_squared, 4)});
  std::printf("%s\n", s.render().c_str());

  // --- Recovery-side predictions vs the four measured conditions.
  bti::RdParameters rd_params;
  const bti::RdModel rd(rd_params);
  const bti::ClosedFormModel td(
      bti::ClosedFormParameters::from_td(bti::default_td_parameters()));

  struct Case {
    const char* label;
    int chip;
    const char* phase;
    bti::OperatingCondition cond;
  };
  const Case cases[] = {
      {"R20Z6 (20C, 0V)", 2, "R20Z6", bti::recovery(Volts{0.0}, Celsius{20.0})},
      {"AR20N6 (20C, -0.3V)", 3, "AR20N6", bti::recovery(Volts{-0.3}, Celsius{20.0})},
      {"AR110Z6 (110C, 0V)", 4, "AR110Z6", bti::recovery(Volts{0.0}, Celsius{110.0})},
      {"AR110N6 (110C, -0.3V)", 5, "AR110N6", bti::recovery(Volts{-0.3}, Celsius{110.0})},
  };

  Table r({"condition", "measured remaining @6 h", "TD prediction",
           "RD prediction"});
  double rd_worst_error = 0.0;
  double td_worst_error = 0.0;
  for (const auto& c : cases) {
    const auto& run = campaign.chip(c.chip);
    const auto delay = run.log.delay_series(c.phase);
    const double measured = (delay.back().value - run.fresh_delay_s) /
                            (delay.front().value - run.fresh_delay_s);
    const double td_pred =
        td.remaining_fraction(Seconds{hours(24.0)}, Seconds{hours(6.0)}, c.cond);
    const double rd_pred = rd.remaining_fraction(Seconds{hours(24.0)}, Seconds{hours(6.0)});
    td_worst_error = std::max(td_worst_error, std::abs(td_pred - measured));
    rd_worst_error = std::max(rd_worst_error, std::abs(rd_pred - measured));
    r.add_row({c.label, fmt_percent(measured, 0), fmt_percent(td_pred, 0),
               fmt_percent(rd_pred, 0)});
  }
  std::printf("%s\n", r.render().c_str());

  Table v({"verdict", "TD", "RD"});
  v.add_row({"worst |prediction - measurement|",
             fmt_percent(td_worst_error, 0), fmt_percent(rd_worst_error, 0)});
  v.add_row({"explains condition dependence?", "yes",
             "no (universal curve)"});
  std::printf("%s\n", v.render().c_str());
  std::printf(
      "reading: this is why the paper's Sec. 3 starts from the TD model —\n"
      "an accelerated-self-healing technique is only *designable* under a\n"
      "physics whose recovery responds to voltage and temperature knobs.\n");
  return 0;
}
