/// ash_lab — command-line front end to the virtual aging laboratory.
///
/// Subcommands:
///   campaign  — run the paper's Table 1 five-chip campaign, CSV per chip
///       ash_lab campaign [--stages 75] [--out DIR] [--seed N]
///                        [--fault-plan none|representative|harsh]
///                        [--retry N] [--no-watchdog] [--jobs N]
///   stress    — one stress + recovery experiment on one chip
///       ash_lab stress [--stages 75] [--seed N] [--temp 110] [--hours 24]
///                      [--mode dc|ac] [--rec-volts -0.3] [--rec-temp 110]
///                      [--rec-hours 6] [--checkpoint FILE]
///   plan      — cheapest sleep conditions for a recovery target
///       ash_lab plan [--target 0.9] [--budget-hours 6] [--stress-hours 24]
///   population — sweep a chip population through the batch engine
///       ash_lab population [--chips 1024] [--seed N] [--mode exact|fast]
///                          [--steps 474] [--temp 110] [--jobs N]
///       N chips with log-normal corner spread aged in lockstep under a
///       drifting DC-stress chamber (the bench_perf_kernels population
///       workload); prints the DeltaVth spread and wall time.  --mode fast
///       opts into util::fast_exp physics (deterministic, but not
///       bit-equal to exact; see DESIGN.md Sec. 13).
///   chipN     — run ONE Table 1 chip of the paper campaign (chip1..chip5)
///       ash_lab chip5 [--stages 75] [--out DIR] [--seed N]
///                     [--fault-plan none|representative|harsh]
///                     [--retry N] [--no-watchdog]
///   multicore — schedule comparison on the 8-core system
///       ash_lab multicore [--years 2] [--cores 6] [--margin-mv 9]
///                         [--fault-plan none|representative|harsh]
///                         [--fault-seed N] [--raw] [--jobs N]
///       --jobs N sizes both the policy fan-out and each system's per-core
///       aging pool (mc::SystemConfig::aging_threads); 0 = one thread per
///       hardware core, absent = serial aging (bit-identical either way).
///       With a fault plan, each policy runs behind the reliability
///       manager (quarantine, failover, telemetry filtering) and the
///       fault/response report is printed; --raw drops the manager to
///       show how an unmanaged policy degrades.
///
/// Observability flags, valid with every subcommand:
///   --trace FILE    record a trace of the run; written as Chrome
///                   trace-event JSON (open in Perfetto / chrome://tracing)
///                   or as JSONL when FILE ends in .jsonl
///   --metrics FILE  write the end-of-run metrics snapshot (key=value lines)
///   --profile       print the per-kernel profile table on exit
///
/// Everything is deterministic under --seed; exit status is non-zero on
/// usage errors.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "ash/bti/batch_ensemble.h"
#include "ash/core/metrics.h"
#include "ash/core/planner.h"
#include "ash/fpga/checkpoint.h"
#include "ash/fpga/chip.h"
#include "ash/mc/reliability.h"
#include "ash/mc/system.h"
#include "ash/obs/metrics.h"
#include "ash/obs/profile.h"
#include "ash/obs/trace.h"
#include "ash/tb/experiment_runner.h"
#include "ash/tb/test_case.h"
#include "ash/util/atomic_file.h"
#include "ash/util/constants.h"
#include "ash/util/flags.h"
#include "ash/util/random.h"
#include "ash/util/table.h"
#include "ash/util/thread_pool.h"

namespace {

using namespace ash;

int usage() {
  std::fprintf(
      stderr,
      "usage: ash_lab <campaign|chip1..chip5|stress|plan|population|"
      "multicore> [--flags]\n"
      "observability: --trace FILE --metrics FILE --profile\n"
      "see the header of tools/ash_lab.cpp for flag lists\n");
  return 2;
}

/// Flags every subcommand accepts (handled globally in main).
const std::vector<std::string> kObsFlags = {"trace", "metrics", "profile"};

std::vector<std::string> with_obs(std::vector<std::string> known) {
  known.insert(known.end(), kObsFlags.begin(), kObsFlags.end());
  return known;
}

/// Shared campaign runner setup for `campaign` and `chipN`.
tb::RunnerConfig campaign_runner_config(const Flags& flags,
                                        const tb::FaultPlan& plan) {
  tb::RunnerConfig rc =
      plan.ideal() ? tb::RunnerConfig{} : tb::tolerant_runner_config(plan);
  rc.fault_plan = plan;
  if (flags.has("retry")) {
    rc.retry.max_sample_retries = flags.get("retry", 3);
  }
  if (flags.get("no-watchdog", false)) rc.watchdog.enabled = false;
  return rc;
}

int cmd_campaign(const Flags& flags) {
  flags.check_known(with_obs({"stages", "out", "seed", "fault-plan", "retry",
                              "no-watchdog", "jobs"}));
  const int stages = flags.get("stages", 75);
  const std::string out_dir = flags.get("out", std::string("."));
  const auto seed = static_cast<std::uint64_t>(flags.get("seed", 0x40A0));
  const auto plan =
      tb::FaultPlan::by_name(flags.get("fault-plan", std::string("none")));

  // The five chips of the Table-1 campaign are fully independent: each
  // task owns its chip and its ExperimentRunner (instrument noise streams
  // are seeded per (runner seed, phase, attempt), so per-task runners
  // reproduce the serial run's logs bit-for-bit).  All I/O and the
  // fault-report merge stay on this thread, in chip order.
  const auto cases = tb::paper_campaign();
  const tb::RunnerConfig runner_cfg = campaign_runner_config(flags, plan);
  const int jobs = flags.get("jobs", 0);
  util::ThreadPool pool(jobs != 0 ? jobs : util::recommended_pool_size(
                                               static_cast<int>(cases.size())));
  auto results = pool.parallel_for(
      static_cast<int>(cases.size()), [&](int i) {
        const auto& tc = cases[static_cast<std::size_t>(i)];
        fpga::ChipConfig cc;
        cc.chip_id = tc.chip_id;
        cc.seed = seed + static_cast<std::uint64_t>(tc.chip_id);
        cc.ro_stages = stages;
        fpga::FpgaChip chip(cc);
        tb::ExperimentRunner runner{runner_cfg};
        return runner.run_campaign(chip, tc);
      });

  tb::FaultReport total_faults;
  Table summary({"chip", "samples", "usable", "fresh f (MHz)",
                 "worst degradation"});
  for (std::size_t ci = 0; ci < cases.size(); ++ci) {
    const auto& tc = cases[ci];
    const auto& result = results[ci];
    const auto& log = result.log;
    total_faults.merge(result.faults);

    const std::string path =
        out_dir + "/campaign_chip" + std::to_string(tc.chip_id) + ".csv";
    std::ofstream os(path);
    if (!os) {
      std::fprintf(stderr, "ash_lab: cannot write %s\n", path.c_str());
      return 1;
    }
    log.write_csv(os);

    double fresh = 0.0;
    for (const auto& r : log.records()) {
      if (r.usable()) {
        fresh = r.frequency_hz.value();
        break;
      }
    }
    double worst = 0.0;
    for (const auto& r : log.records()) {
      if (!r.usable() || fresh <= 0.0) continue;
      worst = std::max(worst, 1.0 - r.frequency_hz.value() / fresh);
    }
    const auto yield = core::campaign_yield(log);
    summary.add_row({strformat("%d", tc.chip_id),
                     strformat("%zu", log.size()),
                     fmt_percent(yield.usable_fraction(), 1),
                     fmt_fixed(fresh / 1e6, 3), fmt_percent(worst, 2)});
    std::printf("wrote %s\n", path.c_str());
  }
  std::printf("%s", summary.render().c_str());
  if (!total_faults.clean()) std::printf("%s", total_faults.render().c_str());
  total_faults.publish(obs::registry());
  return 0;
}

/// Run ONE chip of the Table 1 campaign (`ash_lab chip5 ...`) — the
/// single-chip acceptance path for tracing a Fig. 9-style run.
int cmd_chip(const Flags& flags, const std::string& name) {
  flags.check_known(with_obs(
      {"stages", "out", "seed", "fault-plan", "retry", "no-watchdog"}));
  const tb::TestCase* tc = nullptr;
  const auto campaign = tb::paper_campaign();
  for (const auto& candidate : campaign) {
    if (candidate.name == name) tc = &candidate;
  }
  if (tc == nullptr) {
    std::fprintf(stderr, "ash_lab: unknown chip '%s' (chip1..chip%zu)\n",
                 name.c_str(), campaign.size());
    return 2;
  }

  const auto plan =
      tb::FaultPlan::by_name(flags.get("fault-plan", std::string("none")));
  tb::ExperimentRunner runner{campaign_runner_config(flags, plan)};

  fpga::ChipConfig cc;
  cc.chip_id = tc->chip_id;
  cc.seed = static_cast<std::uint64_t>(flags.get("seed", 0x40A0)) +
            static_cast<std::uint64_t>(tc->chip_id);
  cc.ro_stages = flags.get("stages", 75);
  fpga::FpgaChip chip(cc);

  const auto result = runner.run_campaign(chip, *tc);
  const std::string path = flags.get("out", std::string(".")) +
                           "/campaign_chip" + std::to_string(tc->chip_id) +
                           ".csv";
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "ash_lab: cannot write %s\n", path.c_str());
    return 1;
  }
  result.log.write_csv(os);
  std::printf("wrote %s (%zu samples, %s)\n", path.c_str(), result.log.size(),
              result.completed ? "completed" : "aborted");
  if (!result.faults.clean()) {
    std::printf("%s", result.faults.render().c_str());
  }
  result.faults.publish(obs::registry());
  return 0;
}

int cmd_stress(const Flags& flags) {
  flags.check_known(with_obs({"stages", "seed", "temp", "hours", "mode",
                              "rec-volts", "rec-temp", "rec-hours",
                              "checkpoint"}));
  // Validate the checkpoint destination *before* simulating anything: a
  // doomed 24-hour stress run should fail in milliseconds, not after the
  // work is done.
  const std::string ckpt = flags.get("checkpoint", std::string());
  if (!ckpt.empty()) {
    const std::string dir = util::dirname_of(ckpt);
    if (!util::writable_directory(dir)) {
      std::fprintf(stderr,
                   "ash_lab: --checkpoint %s: directory '%s' is missing or "
                   "not writable\n",
                   ckpt.c_str(), dir.c_str());
      return usage();
    }
  }

  fpga::ChipConfig cc;
  cc.seed = static_cast<std::uint64_t>(flags.get("seed", 1));
  cc.ro_stages = flags.get("stages", 75);
  fpga::FpgaChip chip(cc);

  const double room = celsius(20.0);
  const double fresh = chip.ro_frequency_hz(Volts{1.2}, Kelvin{room}).value();
  std::printf("fresh: %.4f MHz\n", fresh / 1e6);

  const std::string mode = flags.get("mode", std::string("dc"));
  if (mode != "dc" && mode != "ac") {
    std::fprintf(stderr, "ash_lab: --mode must be dc or ac\n");
    return 2;
  }
  const double stress_temp = flags.get("temp", 110.0);
  const double stress_h = flags.get("hours", 24.0);
  chip.evolve(mode == "dc" ? fpga::RoMode::kDcFrozen
                           : fpga::RoMode::kAcOscillating,
              mode == "dc" ? bti::dc_stress(Volts{1.2}, Celsius{stress_temp})
                           : bti::ac_stress(Volts{1.2}, Celsius{stress_temp}),
              Seconds{hours(stress_h)});
  const double stressed = chip.ro_frequency_hz(Volts{1.2}, Kelvin{room}).value();
  std::printf("after %.1f h %s stress @%.0f degC: %.4f MHz (-%.2f%%)\n",
              stress_h, mode.c_str(), stress_temp, stressed / 1e6,
              100.0 * (1.0 - stressed / fresh));

  const double rec_h = flags.get("rec-hours", 6.0);
  if (rec_h > 0.0) {
    const double rec_v = flags.get("rec-volts", -0.3);
    const double rec_t = flags.get("rec-temp", 110.0);
    chip.evolve(fpga::RoMode::kSleep, bti::recovery(Volts{rec_v}, Celsius{rec_t}),
                Seconds{hours(rec_h)});
    const double healed = chip.ro_frequency_hz(Volts{1.2}, Kelvin{room}).value();
    std::printf(
        "after %.1f h recovery @%+.2f V/%.0f degC: %.4f MHz (recovered "
        "%.0f%%)\n",
        rec_h, rec_v, rec_t, healed / 1e6,
        100.0 * (healed - stressed) / (fresh - stressed));
  }

  if (!ckpt.empty()) {
    // Atomic temp-file + rename: a crash mid-write can tear the temp file,
    // never a checkpoint someone might later resume from.
    std::ostringstream doc;
    fpga::save_checkpoint(doc, chip);
    try {
      util::atomic_write_file(ckpt, doc.str());
    } catch (const std::system_error& e) {
      std::fprintf(stderr, "ash_lab: cannot write %s: %s\n", ckpt.c_str(),
                   e.what());
      return 1;
    }
    std::printf("checkpoint written to %s\n", ckpt.c_str());
  }
  return 0;
}

/// Sweep an N-chip population through the batch-of-chips engine
/// (DESIGN.md Sec. 13): log-normal corner spread on the per-trap impact
/// scale, aged in lockstep under a drifting DC-stress chamber — the
/// never-repeating-condition regime where the per-chip path repays the
/// full rate computation per chip per step and the batch engine pays it
/// once per trap class.
int cmd_population(const Flags& flags) {
  flags.check_known(
      with_obs({"chips", "seed", "mode", "steps", "temp", "jobs"}));
  const int chips = flags.get("chips", 1024);
  const int steps = flags.get("steps", 360);
  if (chips < 1 || steps < 1) {
    std::fprintf(stderr, "ash_lab: --chips and --steps must be >= 1\n");
    return 2;
  }
  const std::string mode = flags.get("mode", std::string("exact"));
  if (mode != "exact" && mode != "fast") {
    std::fprintf(stderr, "ash_lab: --mode must be exact or fast\n");
    return 2;
  }
  const auto seed = static_cast<std::uint64_t>(flags.get("seed", 0xF1EE7));
  const double temp_c = flags.get("temp", 110.0);

  // One kinetics class: every chip shares (seed, kinetics), differing only
  // in its corner scale on delta_vth_mean_v — exactly the bench workload,
  // so `--profile` here shows the same bti.batch.evolve kernel the CI
  // perf gate tracks.
  std::vector<bti::BatchMemberSpec> specs;
  Rng scales(seed);
  for (int m = 0; m < chips; ++m) {
    bti::TdParameters p = bti::default_td_parameters();
    p.delta_vth_mean_v = p.delta_vth_mean_v * std::exp(scales.normal(0.0, 0.05));
    specs.push_back({p, seed + 1});
  }

  bti::BatchConfig bc;
  bc.fast_exp = (mode == "fast");
  const int jobs = flags.get("jobs", 0);
  std::unique_ptr<util::ThreadPool> pool;
  if (flags.has("jobs")) {
    pool = std::make_unique<util::ThreadPool>(
        jobs != 0 ? jobs : util::recommended_pool_size(chips));
    bc.pool = pool.get();
  }
  bti::BatchEnsemble batch(specs, bc);
  std::printf("population: %d chip(s), %d class(es), %d trap(s)/chip, "
              "%s physics\n",
              batch.member_count(), batch.class_count(), batch.trap_count(0),
              mode.c_str());

  // Harness wall time around the sweep (reported, never fed back into the
  // physics) — the same legitimacy as the bench timers.
  const auto t0 = std::chrono::steady_clock::now();  // ash-lint: allow(wall-clock): harness timer, never feeds physics
  for (int s = 0; s < steps; ++s) {
    bti::OperatingCondition cond;
    cond.voltage_v = Volts{1.2};
    cond.temperature_k = Kelvin{celsius(temp_c) + 0.011 * s};  // drifting chamber
    cond.gate_stress_duty = 1.0;
    batch.evolve(cond, Seconds{60.0});
  }
  const auto t1 = std::chrono::steady_clock::now();  // ash-lint: allow(wall-clock): harness timer, never feeds physics

  const std::vector<double> shifts = batch.delta_vth_all();
  double lo = shifts.front(), hi = shifts.front(), sum = 0.0;
  for (const double v : shifts) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
    sum += v;
  }
  Table t({"metric", "value"});
  t.add_row({"stress time", fmt_fixed(steps * 60.0 / 3600.0, 2) + " h @ " +
                                fmt_fixed(temp_c, 0) + " degC (drifting)"});
  t.add_row({"mean DeltaVth", fmt_fixed(sum / chips * 1e3, 4) + " mV"});
  t.add_row({"min DeltaVth", fmt_fixed(lo * 1e3, 4) + " mV"});
  t.add_row({"max DeltaVth", fmt_fixed(hi * 1e3, 4) + " mV"});
  t.add_row({"sweep wall time",
             fmt_fixed(std::chrono::duration<double, std::milli>(t1 - t0)
                           .count(),
                       1) +
                 " ms"});
  std::printf("%s", t.render().c_str());
  return 0;
}

int cmd_plan(const Flags& flags) {
  flags.check_known(with_obs({"target", "budget-hours", "stress-hours"}));
  core::PlannerConfig cfg;
  cfg.target_recovered_fraction = flags.get("target", 0.9);
  cfg.max_sleep_s = Seconds{hours(flags.get("budget-hours", 6.0))};
  cfg.t1_equiv_s = Seconds{hours(flags.get("stress-hours", 24.0))};
  const auto plan = core::plan_recovery(cfg);
  if (!plan.feasible) {
    std::printf("no feasible plan: target %.0f%% within %.1f h\n",
                cfg.target_recovered_fraction * 100.0,
                to_hours(cfg.max_sleep_s.value()));
    return 1;
  }
  std::printf(
      "cheapest plan: sleep %.2f h at %.1f degC, %+.2f V (achieves %.1f%%)\n",
      to_hours(plan.sleep_s.value()), plan.temp_c.value(), plan.voltage_v.value(),
      plan.achieved_fraction * 100.0);
  return 0;
}

int cmd_multicore(const Flags& flags) {
  flags.check_known(with_obs({"years", "cores", "margin-mv", "fault-plan",
                              "fault-seed", "raw", "jobs"}));
  mc::SystemConfig cfg;
  cfg.horizon_s = Seconds{flags.get("years", 2.0) * 365.25 * 86400.0};
  cfg.cores_needed = flags.get("cores", 6);
  cfg.margin_delta_vth_v = Volts{flags.get("margin-mv", 9.0) * 1e-3};
  // --jobs reaches the per-core aging fan-out inside simulate_system too:
  // N workers per policy (0 = one per hardware core).  Absent keeps the
  // serial default; results are bit-identical at any setting.
  if (flags.has("jobs")) cfg.aging_threads = flags.get("jobs", 0);

  auto plan =
      mc::CoreFaultPlan::by_name(flags.get("fault-plan", std::string("none")));
  if (flags.has("fault-seed")) {
    plan.seed = static_cast<std::uint64_t>(flags.get("fault-seed", 0));
  }
  const bool raw = flags.get("raw", false);

  // The two scheduling policies run against independent virtual systems;
  // fan them out and merge reports in policy order.
  struct PolicyOutcome {
    mc::SystemResult result;
    mc::ReliabilityReport report;
  };
  const int jobs = flags.get("jobs", 0);
  util::ThreadPool pool(jobs != 0 ? jobs : util::recommended_pool_size(2));
  auto outcomes = pool.parallel_for(2, [&](int i) {
    mc::AllActiveScheduler all;
    mc::HeaterAwareCircadianScheduler circadian;
    mc::Scheduler& base =
        i == 0 ? static_cast<mc::Scheduler&>(all)
               : static_cast<mc::Scheduler&>(circadian);
    mc::ReliabilityConfig rel;
    rel.margin_delta_vth_v = cfg.margin_delta_vth_v;
    PolicyOutcome out;
    mc::ReliabilityManager managed(base, rel, &out.report);
    mc::Scheduler& policy =
        plan.ideal() || raw ? base : static_cast<mc::Scheduler&>(managed);
    out.result = plan.ideal()
                     ? simulate_system(cfg, policy)
                     : simulate_system(cfg, policy, plan, &out.report);
    return out;
  });

  mc::ReliabilityReport total;
  Table t({"policy", "mean aging (mV)", "lifetime (days)",
           "deficit (core-days)", "core deaths"});
  for (const auto& out : outcomes) {
    const auto& r = out.result;
    t.add_row({r.scheduler,
               fmt_fixed(r.mean_end_delta_vth_v.value() * 1e3, 2),
               r.margin_exceeded
                   ? fmt_fixed(r.time_to_first_margin_s.value() / 86400.0, 0)
                   : ">" + fmt_fixed(cfg.horizon_s.value() / 86400.0, 0),
               fmt_fixed(r.demand_deficit_core_s.value() / 86400.0, 1),
               strformat("%d", out.report.permanent_deaths)});
    total.merge(out.report);
  }
  std::printf("%s", t.render().c_str());
  if (!plan.ideal()) std::printf("\n%s", total.render().c_str());
  total.publish(obs::registry());
  return 0;
}

int dispatch(const std::string& cmd, const Flags& flags) {
  if (cmd == "campaign") return cmd_campaign(flags);
  if (cmd == "stress") return cmd_stress(flags);
  if (cmd == "plan") return cmd_plan(flags);
  if (cmd == "population") return cmd_population(flags);
  if (cmd == "multicore") return cmd_multicore(flags);
  if (cmd.rfind("chip", 0) == 0) return cmd_chip(flags, cmd);
  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  obs::TraceBuffer trace;
  std::unique_ptr<obs::TraceWriter> trace_writer;
  try {
    const Flags flags(argc, argv);
    if (flags.positional().empty()) return usage();

    const std::string trace_path = flags.get("trace", std::string());
    const std::string metrics_path = flags.get("metrics", std::string());
    const bool profile = flags.get("profile", false);
    const bool jsonl = trace_path.size() >= 6 &&
                       trace_path.rfind(".jsonl") == trace_path.size() - 6;
    if (!trace_path.empty()) {
      if (jsonl) {
        // JSONL streams to disk as the run goes — a long mission's trace
        // never has to fit in memory.  Chrome JSON needs the whole event
        // list for its enclosing array, so it keeps the buffering sink.
        trace_writer = std::make_unique<obs::TraceWriter>(trace_path);
        if (!trace_writer->ok()) {
          std::fprintf(stderr, "ash_lab: cannot write %s\n",
                       trace_path.c_str());
          return 1;
        }
        obs::set_trace_sink(trace_writer.get());
      } else {
        obs::set_trace_sink(&trace);
      }
    }
    if (profile) obs::enable_profiling(true);

    const int rc = dispatch(flags.positional().front(), flags);
    obs::set_trace_sink(nullptr);

    if (trace_writer) {
      trace_writer->flush();
      if (!trace_writer->ok()) {
        std::fprintf(stderr, "ash_lab: cannot write %s\n", trace_path.c_str());
        return 1;
      }
      std::printf("trace: %llu event(s) streamed to %s\n",
                  static_cast<unsigned long long>(
                      trace_writer->events_written()),
                  trace_path.c_str());
    } else if (!trace_path.empty()) {
      std::ofstream os(trace_path);
      if (!os) {
        std::fprintf(stderr, "ash_lab: cannot write %s\n", trace_path.c_str());
        return 1;
      }
      trace.write_chrome_json(os);
      std::printf("trace: %zu event(s) written to %s\n", trace.size(),
                  trace_path.c_str());
    }
    if (!metrics_path.empty()) {
      std::ofstream os(metrics_path);
      if (!os) {
        std::fprintf(stderr, "ash_lab: cannot write %s\n",
                     metrics_path.c_str());
        return 1;
      }
      obs::registry().snapshot().write(os);
      std::printf("metrics written to %s\n", metrics_path.c_str());
    }
    if (profile) std::printf("%s", obs::profile_table().c_str());
    return rc;
  } catch (const std::invalid_argument& e) {
    // Bad or unknown flags (a typo'd --fault-pan must not run a clean
    // campaign): say what was wrong, show the usage, exit non-zero.
    obs::set_trace_sink(nullptr);
    std::fprintf(stderr, "ash_lab: %s\n", e.what());
    return usage();
  } catch (const std::exception& e) {
    obs::set_trace_sink(nullptr);
    std::fprintf(stderr, "ash_lab: %s\n", e.what());
    return 2;
  }
}
