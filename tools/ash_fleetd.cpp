/// ash_fleetd — the resident fleet aging service.
///
/// Keeps the fleet substrate resident and answers queries over a
/// Unix-domain socket speaking the CRC-framed protocol of
/// ash/fleet/protocol.h (hostile-input-proof: truncated, oversized,
/// bit-flipped and garbage frames are rejected at the earliest byte that
/// proves them invalid, and the offending connection is dropped).
///
/// Modes:
///
///   ash_fleetd serve --socket PATH --state-dir DIR
///              [--campaign-dir DIR --shards N [--run-fleet --stages N]]
///              [--devices N] [--margin-mv F] [--seed N] [--queue N]
///              [--io-timeout-ms N] [--max-conns N] [--metrics FILE]
///              [--flight FILE] [--flight-capacity N] [--no-instrument]
///              [--profile] [--trace FILE]
///     Run the daemon.  --run-fleet first shards the paper campaign across
///     supervised worker processes (ash_fleet's machinery) so the
///     rejuvenation query has durable shard snapshots to rank.  SIGTERM
///     drains gracefully (final durable state snapshot); SIGKILL is safe —
///     the next start resumes from the newest snapshot that verifies.
///     --flight keeps a crash-safe flight recorder that persists across
///     kills; --profile turns on kernel profiling (served by the profile
///     scrape); --trace streams request-path spans as JSONL.
///
///   ash_fleetd query --socket PATH (ping|status|margin|rejuvenation|sleep)
///              [--device N] [--duty F] [--vdd F] [--temp F] [--horizon-h F]
///              [--start-s F] [--duration-s F] [--client N]
///     One-shot client call; prints the response payload.
///
///   ash_fleetd top --socket PATH [--interval-ms N] [--iterations N]
///              [--prefix STR]
///     Live dashboard: polls the health/metrics/profile scrape channel and
///     renders uptime, load, per-verb latency quantiles and kernel hot
///     spots.  Scrapes are volatile — watching a daemon never perturbs its
///     durable state or transcripts.
///
///   ash_fleetd stats --socket PATH [--prefix STR] [--json]
///     One-shot scrape of the same channel; --json emits a machine-readable
///     object (health + metrics + profile).
///
///   ash_fleetd flight --file PATH
///     Load and render a flight-recorder dump (tolerates torn tails from
///     SIGKILLed daemons — everything before the tear is shown).
///
///   ash_fleetd drill --dir DIR [--requests N] [--devices N] [--shards N]
///              [--stages N] [--seed N] [--chaos protocol] [--quiet]
///     The robustness acceptance drill (the CI chaos job runs this under
///     ASan+UBSan): run the same scripted client session twice — once
///     undisturbed, once under the protocol chaos preset (dropped
///     connections, mid-frame tears, stalled writes, daemon SIGKILL +
///     restart between requests) — and require the two transcripts to be
///     byte-identical.  Both sessions interleave metrics/health scrapes
///     mid-session, pinning that observation does not perturb the
///     transcript.  Exit 0 on identical transcripts, 1 otherwise.

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "ash/fleet/client.h"
#include "ash/fleet/service.h"
#include "ash/fleet/supervisor.h"
#include "ash/obs/flight_recorder.h"
#include "ash/obs/metrics.h"
#include "ash/obs/profile.h"
#include "ash/obs/trace.h"
#include "ash/util/atomic_file.h"
#include "ash/util/crc32.h"
#include "ash/util/flags.h"
#include "ash/util/syscall.h"
#include "ash/util/table.h"

namespace {

using namespace ash;

int usage() {
  std::fprintf(
      stderr,
      "usage: ash_fleetd serve --socket PATH --state-dir DIR\n"
      "                  [--campaign-dir DIR --shards N [--run-fleet "
      "--stages N]]\n"
      "                  [--devices N] [--margin-mv F] [--seed N] "
      "[--queue N]\n"
      "                  [--io-timeout-ms N] [--max-conns N] "
      "[--metrics FILE]\n"
      "                  [--flight FILE] [--flight-capacity N] "
      "[--no-instrument]\n"
      "                  [--profile] [--trace FILE]\n"
      "       ash_fleetd query --socket PATH "
      "(ping|status|margin|rejuvenation|sleep)\n"
      "                  [--device N] [--duty F] [--vdd F] [--temp F] "
      "[--horizon-h F]\n"
      "                  [--start-s F] [--duration-s F] [--client N]\n"
      "       ash_fleetd top --socket PATH [--interval-ms N] "
      "[--iterations N] [--prefix STR]\n"
      "       ash_fleetd stats --socket PATH [--prefix STR] [--json]\n"
      "       ash_fleetd flight --file PATH\n"
      "       ash_fleetd drill --dir DIR [--requests N] [--devices N]\n"
      "                  [--shards N] [--stages N] [--seed N] "
      "[--chaos protocol] [--quiet]\n");
  return 2;
}

/// Make DIR/name, failing loudly.
std::string make_subdir(const std::string& dir, const std::string& name) {
  const std::string path = dir + "/" + name;
  const std::string cmd = "mkdir -p '" + path + "'";
  if (std::system(cmd.c_str()) != 0) {
    throw std::runtime_error("cannot create directory " + path);
  }
  return path;
}

/// Run the paper campaign sharded across supervised processes so the
/// rejuvenation query has durable snapshots to rank.
void run_fleet_campaign(const std::string& campaign_dir, int shards,
                        int stages, std::uint64_t seed) {
  fleet::FleetConfig config;
  config.checkpoint_dir = campaign_dir;
  config.backoff_initial_ms = 1;
  config.backoff_max_ms = 50;
  fleet::FleetSupervisor supervisor(
      config, fleet::paper_fleet_shards(shards, seed, stages));
  const fleet::FleetReport report = supervisor.run();
  if (!report.all_completed()) {
    std::fprintf(stderr, "ash_fleetd: warning: campaign left %zu shard(s) "
                         "incomplete; serving anyway\n",
                 report.shards.size());
  }
}

int run_serve(const Flags& flags) {
  fleet::ServiceConfig config;
  config.socket_path = flags.get("socket", std::string());
  config.state_dir = flags.get("state-dir", std::string());
  config.campaign_dir = flags.get("campaign-dir", std::string());
  config.shard_count = flags.get("shards", 0);
  config.devices =
      static_cast<std::uint64_t>(flags.get("devices", 64));
  config.margin = Volts{flags.get("margin-mv", 12.0) * 1e-3};
  if (flags.has("seed")) {
    config.seed = static_cast<std::uint64_t>(flags.get("seed", 0));
  }
  config.max_request_queue = flags.get("queue", 8);
  config.io_timeout_ms = flags.get("io-timeout-ms", 2000);
  config.max_connections = flags.get("max-conns", 64);
  config.metrics_path = flags.get("metrics", std::string());
  config.instrument = !flags.get("no-instrument", false);
  config.flight_recorder_path = flags.get("flight", std::string());
  config.flight_recorder_capacity =
      static_cast<std::size_t>(flags.get("flight-capacity", 256));
  if (config.socket_path.empty() || config.state_dir.empty()) {
    std::fprintf(stderr, "ash_fleetd: serve needs --socket and --state-dir\n");
    return usage();
  }
  if (!util::writable_directory(config.state_dir)) {
    std::fprintf(stderr, "ash_fleetd: --state-dir %s: not an existing "
                         "writable directory\n",
                 config.state_dir.c_str());
    return usage();
  }
  if (flags.get("run-fleet", false)) {
    if (config.campaign_dir.empty() || config.shard_count < 1) {
      std::fprintf(stderr,
                   "ash_fleetd: --run-fleet needs --campaign-dir and "
                   "--shards\n");
      return usage();
    }
    run_fleet_campaign(config.campaign_dir, config.shard_count,
                       flags.get("stages", 11),
                       static_cast<std::uint64_t>(flags.get("seed", 0x40A0)));
  }
  if (flags.get("profile", false)) obs::enable_profiling(true);
  std::unique_ptr<obs::TraceWriter> trace_writer;
  const std::string trace_path = flags.get("trace", std::string());
  if (!trace_path.empty()) {
    trace_writer = std::make_unique<obs::TraceWriter>(trace_path);
    if (!trace_writer->ok()) {
      std::fprintf(stderr, "ash_fleetd: cannot write trace to %s\n",
                   trace_path.c_str());
      return 2;
    }
    obs::set_trace_sink(trace_writer.get());
  }
  fleet::Service service(config);
  std::printf("ash_fleetd: serving %llu devices on %s (sequence %llu)\n",
              static_cast<unsigned long long>(service.state().devices.size()),
              config.socket_path.c_str(),
              static_cast<unsigned long long>(service.state().sequence));
  std::fflush(stdout);
  service.run();
  std::printf("%s", service.stats().render().c_str());
  if (trace_writer) {
    obs::set_trace_sink(nullptr);
    trace_writer->flush();
  }
  return 0;
}

int run_query(const Flags& flags) {
  const std::string socket_path = flags.get("socket", std::string());
  if (socket_path.empty() || flags.positional().size() != 2) {
    std::fprintf(stderr,
                 "ash_fleetd: query needs --socket and one verb\n");
    return usage();
  }
  fleet::ClientConfig cc;
  cc.socket_path = socket_path;
  cc.client_id = static_cast<std::uint64_t>(flags.get("client", 1));
  fleet::Client client(cc);
  const std::string& verb = flags.positional()[1];
  if (verb == "ping") {
    std::printf("pong: %s\n", client.ping() ? "yes" : "no");
  } else if (verb == "status") {
    const auto resp = client.status();
    std::printf("devices %llu windows %llu sequence %llu draining %d\n",
                static_cast<unsigned long long>(resp.devices),
                static_cast<unsigned long long>(resp.windows),
                static_cast<unsigned long long>(resp.sequence),
                resp.draining ? 1 : 0);
  } else if (verb == "margin") {
    fleet::MarginRequest req;
    req.device_id = static_cast<std::uint64_t>(flags.get("device", 0));
    req.duty = flags.get("duty", 0.5);
    req.vdd = Volts{flags.get("vdd", 1.2)};
    req.temp = Celsius{flags.get("temp", 80.0)};
    req.horizon = units::hours(flags.get("horizon-h", 87660.0));
    const auto resp = client.margin(req);
    if (resp.crosses) {
      std::printf("crosses in %.6g h (delta_vth %.4g mV of %.4g mV)\n",
                  resp.time_to_margin.value() / 3600.0,
                  resp.delta_vth.value() * 1e3, resp.margin.value() * 1e3);
    } else {
      std::printf("holds through the %.6g h horizon (delta_vth %.4g mV of "
                  "%.4g mV)\n",
                  req.horizon.value() / 3600.0, resp.delta_vth.value() * 1e3,
                  resp.margin.value() * 1e3);
    }
  } else if (verb == "rejuvenation") {
    const auto resp = client.rejuvenation(fleet::RejuvenationRequest{});
    if (resp.any) {
      std::printf("shard %d (fractional degradation %.6g)\n", resp.shard_id,
                  resp.degradation);
    } else {
      std::printf("no shard has a rankable snapshot\n");
    }
  } else if (verb == "sleep") {
    fleet::ScheduleSleepRequest req;
    req.device_id = static_cast<std::uint64_t>(flags.get("device", 0));
    req.start = Seconds{flags.get("start-s", 0.0)};
    req.duration = Seconds{flags.get("duration-s", 6.0 * 3600.0)};
    const auto resp = client.schedule_sleep(req);
    std::printf("booked: device %llu now has %llu window(s)\n",
                static_cast<unsigned long long>(req.device_id),
                static_cast<unsigned long long>(resp.windows));
  } else {
    std::fprintf(stderr, "ash_fleetd: unknown query verb '%s'\n",
                 verb.c_str());
    return usage();
  }
  return 0;
}

void sleep_ms(int ms) {
  if (ms <= 0) return;
  struct timespec ts;
  ts.tv_sec = ms / 1000;
  ts.tv_nsec = static_cast<long>(ms % 1000) * 1000000L;
  (void)util::retry_eintr([&] { return ::nanosleep(&ts, &ts); });
}

/// Parse `key=value` metric lines (MetricsSnapshot::write format) into a
/// name-sorted map.  Unparseable lines are skipped, not fatal — the
/// dashboard degrades, it never crashes on a daemon newer than itself.
std::map<std::string, double> parse_metric_lines(const std::string& text) {
  std::map<std::string, double> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string_view line(text.data() + pos, eol - pos);
    pos = eol + 1;
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos || eq == 0) continue;
    const std::string value(line.substr(eq + 1));
    char* end = nullptr;
    const double parsed = std::strtod(value.c_str(), &end);
    if (end == value.c_str()) continue;
    out.emplace(std::string(line.substr(0, eq)), parsed);
  }
  return out;
}

std::string render_health(const fleet::HealthResponse& health) {
  return strformat(
      "health: polls %llu conns %llu (hw %llu) queue-hw %llu "
      "requests %llu shed %llu snapshot-lag %llu%s\n",
      static_cast<unsigned long long>(health.poll_iterations),
      static_cast<unsigned long long>(health.connections),
      static_cast<unsigned long long>(health.connections_high_water),
      static_cast<unsigned long long>(health.queue_depth_high_water),
      static_cast<unsigned long long>(health.requests),
      static_cast<unsigned long long>(health.shed),
      static_cast<unsigned long long>(health.snapshot_lag),
      health.draining ? " DRAINING" : "");
}

/// Histogram rows of a metric map: every `<base>.count` with a matching
/// `<base>.sum` is a histogram (quantile keys exist only when non-empty).
std::string render_latency_table(const std::map<std::string, double>& m) {
  std::string out;
  for (const auto& [name, value] : m) {
    constexpr std::string_view kCount = ".count";
    if (name.size() <= kCount.size() ||
        name.compare(name.size() - kCount.size(), kCount.size(), kCount) !=
            0) {
      continue;
    }
    const std::string base = name.substr(0, name.size() - kCount.size());
    if (m.find(base + ".sum") == m.end()) continue;
    const auto quantile = [&](const char* q) {
      const auto it = m.find(base + q);
      return it == m.end() ? std::string("-")
                           : strformat("%.3g", it->second);
    };
    out += strformat("  %-36s %10llu %10s %10s %10s\n", base.c_str(),
                           static_cast<unsigned long long>(value),
                           quantile(".p50").c_str(), quantile(".p95").c_str(),
                           quantile(".p99").c_str());
  }
  if (!out.empty()) {
    out = strformat("  %-36s %10s %10s %10s %10s\n", "histogram",
                          "count", "p50", "p95", "p99") +
          out;
  }
  return out;
}

std::string render_profile(const fleet::ProfileResponse& resp) {
  if (!resp.profiling) {
    return "profile: disabled (serve with --profile)\n";
  }
  if (resp.kernels.empty()) {
    return "profile: enabled, no kernel calls yet\n";
  }
  std::string out = strformat("  %-24s %12s %14s %10s\n", "kernel",
                                    "calls", "total_ms", "ns/call");
  for (const auto& k : resp.kernels) {
    out += strformat(
        "  %-24s %12llu %14.3f %10.0f\n", k.kernel.c_str(),
        static_cast<unsigned long long>(k.calls), k.total_ns / 1e6,
        k.calls > 0 ? static_cast<double>(k.total_ns) /
                          static_cast<double>(k.calls)
                    : 0.0);
  }
  return out;
}

int run_top(const Flags& flags) {
  const std::string socket_path = flags.get("socket", std::string());
  if (socket_path.empty()) {
    std::fprintf(stderr, "ash_fleetd: top needs --socket\n");
    return usage();
  }
  const int interval_ms = flags.get("interval-ms", 500);
  const int iterations = flags.get("iterations", 0);  // 0 = forever
  const std::string prefix = flags.get("prefix", std::string("fleet."));
  fleet::ClientConfig cc;
  cc.socket_path = socket_path;
  cc.client_id = 0xA5;  // dashboards are clients too, just volatile ones
  fleet::Client client(cc);
  for (int i = 0; iterations <= 0 || i < iterations; ++i) {
    const auto health = client.health();
    const auto metrics = client.metrics(prefix);
    const auto profile = client.profile();
    std::printf("── ash_fleetd top · tick %d ──\n", i + 1);
    std::printf("%s", render_health(health).c_str());
    const auto values = parse_metric_lines(metrics.text);
    std::printf("%s", render_latency_table(values).c_str());
    std::printf("%s", render_profile(profile).c_str());
    std::fflush(stdout);
    if (iterations > 0 && i + 1 >= iterations) break;
    sleep_ms(interval_ms);
  }
  return 0;
}

/// JSON string escape for metric/kernel names (conservative).
std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += strformat("\\u%04x", c);
    } else {
      out += c;
    }
  }
  return out;
}

int run_stats(const Flags& flags) {
  const std::string socket_path = flags.get("socket", std::string());
  if (socket_path.empty()) {
    std::fprintf(stderr, "ash_fleetd: stats needs --socket\n");
    return usage();
  }
  const std::string prefix = flags.get("prefix", std::string("fleet."));
  fleet::ClientConfig cc;
  cc.socket_path = socket_path;
  cc.client_id = 0xA5;
  fleet::Client client(cc);
  const auto health = client.health();
  const auto metrics = client.metrics(prefix);
  const auto profile = client.profile();
  if (!flags.get("json", false)) {
    std::printf("%s", render_health(health).c_str());
    std::printf("%s", metrics.text.c_str());
    std::printf("%s", render_profile(profile).c_str());
    return 0;
  }
  std::string out = "{\"health\":{";
  out += strformat(
      "\"poll_iterations\":%llu,\"connections\":%llu,"
      "\"connections_high_water\":%llu,\"queue_depth_high_water\":%llu,"
      "\"requests\":%llu,\"shed\":%llu,\"snapshot_lag\":%llu,"
      "\"draining\":%s},",
      static_cast<unsigned long long>(health.poll_iterations),
      static_cast<unsigned long long>(health.connections),
      static_cast<unsigned long long>(health.connections_high_water),
      static_cast<unsigned long long>(health.queue_depth_high_water),
      static_cast<unsigned long long>(health.requests),
      static_cast<unsigned long long>(health.shed),
      static_cast<unsigned long long>(health.snapshot_lag),
      health.draining ? "true" : "false");
  out += "\"metrics\":{";
  bool first = true;
  for (const auto& [name, value] : parse_metric_lines(metrics.text)) {
    if (!first) out += ',';
    first = false;
    out += '"' + json_escape(name) + "\":";
    out += std::isfinite(value) ? strformat("%.17g", value)
                                : std::string("null");
  }
  out += strformat("},\"profiling\":%s,\"profile\":[",
                         profile.profiling ? "true" : "false");
  first = true;
  for (const auto& k : profile.kernels) {
    if (!first) out += ',';
    first = false;
    out += strformat(
        "{\"kernel\":\"%s\",\"calls\":%llu,\"total_ns\":%llu}",
        json_escape(k.kernel).c_str(),
        static_cast<unsigned long long>(k.calls),
        static_cast<unsigned long long>(k.total_ns));
  }
  out += "]}\n";
  std::printf("%s", out.c_str());
  return 0;
}

int run_flight(const Flags& flags) {
  const std::string file = flags.get("file", std::string());
  if (file.empty()) {
    std::fprintf(stderr, "ash_fleetd: flight needs --file\n");
    return usage();
  }
  const std::string bytes = util::read_file(file);
  const auto events = obs::FlightRecorder::load(bytes);
  std::printf("%s", obs::FlightRecorder::render(events).c_str());
  return 0;
}

/// A forked daemon the drill owns: SIGKILL-able, restartable, drainable.
class DrillDaemon {
 public:
  explicit DrillDaemon(fleet::ServiceConfig config)
      : config_(std::move(config)) {}

  void start() {
    pid_ = ::fork();
    if (pid_ < 0) throw std::runtime_error("drill: fork failed");
    if (pid_ == 0) {
      try {
        fleet::Service service(config_);
        service.run();
        std::_Exit(0);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "ash_fleetd[daemon]: %s\n", e.what());
        std::_Exit(3);
      }
    }
  }

  /// SIGKILL + restart-from-newest-snapshot: the chaos hook.
  void kill_and_restart() {
    if (pid_ > 0) {
      ::kill(pid_, SIGKILL);
      int status = 0;
      (void)util::retry_eintr([&] { return ::waitpid(pid_, &status, 0); });
      pid_ = -1;
    }
    start();
  }

  /// SIGTERM and reap; returns the daemon's exit status (0 = clean drain).
  int terminate() {
    if (pid_ <= 0) return -1;
    ::kill(pid_, SIGTERM);
    int status = 0;
    (void)util::retry_eintr([&] { return ::waitpid(pid_, &status, 0); });
    pid_ = -1;
    return WIFEXITED(status) ? WEXITSTATUS(status) : 128 + WTERMSIG(status);
  }

 private:
  fleet::ServiceConfig config_;
  pid_t pid_ = -1;
};

/// The scripted query/mutation mix both drill sessions replay.
std::string run_session(DrillDaemon& daemon, const std::string& socket_path,
                        const fleet::FleetFaultPlan& chaos, int requests,
                        int devices, bool quiet) {
  fleet::ClientConfig cc;
  cc.socket_path = socket_path;
  cc.client_id = 42;
  cc.chaos = chaos;
  cc.kill_daemon = [&daemon] { daemon.kill_and_restart(); };
  fleet::Client client(cc);
  for (int i = 0; i < requests; ++i) {
    const auto device = static_cast<std::uint64_t>(i % devices);
    switch (i % 5) {
      case 0:
        (void)client.status();
        break;
      case 1: {
        fleet::MarginRequest req;
        req.device_id = device;
        req.duty = 0.25 * (1 + i % 3);
        (void)client.margin(req);
        break;
      }
      case 2: {
        fleet::ScheduleSleepRequest req;
        req.device_id = device;
        req.start = Seconds{3600.0 * i};
        req.duration = units::hours(6.0);
        (void)client.schedule_sleep(req);
        break;
      }
      case 3:
        (void)client.rejuvenation(fleet::RejuvenationRequest{});
        break;
      default:
        (void)client.ping();
        break;
    }
    // Volatile scrapes interleaved mid-session, identically in the clean
    // and chaos runs: watching the daemon must never show up in the
    // transcript, and the identity gate pins exactly that.
    if (i % 3 == 2) {
      (void)client.health();
      (void)client.metrics("fleet.service.");
    }
  }
  (void)client.status();  // final durable-state fingerprint
  if (!quiet) std::printf("%s", client.stats().render().c_str());
  return client.transcript();
}

int run_drill(const Flags& flags) {
  const std::string dir = flags.get("dir", std::string());
  if (dir.empty() || !util::writable_directory(dir)) {
    std::fprintf(stderr,
                 "ash_fleetd: drill needs --dir (existing writable)\n");
    return usage();
  }
  const int requests = flags.get("requests", 20);
  const int devices = flags.get("devices", 8);
  const int shards = flags.get("shards", 2);
  const int stages = flags.get("stages", 5);
  const auto seed = static_cast<std::uint64_t>(flags.get("seed", 0x40A0));
  const bool quiet = flags.get("quiet", false);
  const fleet::FleetFaultPlan chaos =
      fleet::FleetFaultPlan::by_name(flags.get("chaos",
                                               std::string("protocol")));

  std::string transcripts[2];
  const char* names[2] = {"clean", "chaos"};
  for (int session = 0; session < 2; ++session) {
    const std::string root = make_subdir(dir, names[session]);
    fleet::ServiceConfig config;
    config.socket_path = root + "/fleetd.sock";
    config.state_dir = make_subdir(root, "state");
    config.campaign_dir = make_subdir(root, "campaign");
    config.shard_count = shards;
    config.devices = static_cast<std::uint64_t>(devices);
    config.seed = seed;
    // Tight I/O deadline so the chaos stall (400 ms) triggers a real
    // slow-loris eviction; honest requests never park that long.
    config.io_timeout_ms = 150;
    // Telemetry artifacts: when the drill fails (or is SIGKILLed by the
    // chaos plan mid-write), these are what CI uploads for diagnosis.
    config.metrics_path = root + "/metrics.txt";
    config.flight_recorder_path = root + "/flight.txt";
    run_fleet_campaign(config.campaign_dir, shards, stages, seed);
    DrillDaemon daemon(config);
    daemon.start();
    transcripts[session] = run_session(
        daemon, config.socket_path,
        session == 0 ? fleet::FleetFaultPlan::none() : chaos, requests,
        devices, quiet);
    const int exit_status = daemon.terminate();
    if (exit_status != 0) {
      std::fprintf(stderr, "ash_fleetd: %s daemon exited %d\n",
                   names[session], exit_status);
      return 1;
    }
  }

  const bool identical = transcripts[0] == transcripts[1];
  std::printf("clean transcript: %zu bytes crc32 %08x\n",
              transcripts[0].size(), util::crc32(transcripts[0]));
  std::printf("chaos transcript: %zu bytes crc32 %08x\n",
              transcripts[1].size(), util::crc32(transcripts[1]));
  std::printf("transcripts %s\n",
              identical ? "identical" : "DIVERGED");
  return identical ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Flags flags(argc, argv);
    flags.check_known(
        {"socket", "state-dir", "campaign-dir", "shards", "run-fleet",
         "stages", "devices", "margin-mv", "seed", "queue", "io-timeout-ms",
         "max-conns", "metrics", "device", "duty", "vdd", "temp", "horizon-h",
         "start-s", "duration-s", "client", "dir", "requests", "chaos",
         "quiet", "flight", "flight-capacity", "no-instrument", "profile",
         "trace", "interval-ms", "iterations", "prefix", "json", "file"});
    if (flags.positional().empty()) return usage();
    const std::string& mode = flags.positional()[0];
    if (mode == "serve") return run_serve(flags);
    if (mode == "query") return run_query(flags);
    if (mode == "top") return run_top(flags);
    if (mode == "stats") return run_stats(flags);
    if (mode == "flight") return run_flight(flags);
    if (mode == "drill") return run_drill(flags);
    std::fprintf(stderr, "ash_fleetd: unknown mode '%s'\n", mode.c_str());
    return usage();
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "ash_fleetd: %s\n", e.what());
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ash_fleetd: %s\n", e.what());
    return 2;
  }
}
