/// ash_fleetd — the resident fleet aging service.
///
/// Keeps the fleet substrate resident and answers queries over a
/// Unix-domain socket speaking the CRC-framed protocol of
/// ash/fleet/protocol.h (hostile-input-proof: truncated, oversized,
/// bit-flipped and garbage frames are rejected at the earliest byte that
/// proves them invalid, and the offending connection is dropped).
///
/// Modes:
///
///   ash_fleetd serve --socket PATH --state-dir DIR
///              [--campaign-dir DIR --shards N [--run-fleet --stages N]]
///              [--devices N] [--margin-mv F] [--seed N] [--queue N]
///              [--io-timeout-ms N] [--max-conns N] [--metrics FILE]
///     Run the daemon.  --run-fleet first shards the paper campaign across
///     supervised worker processes (ash_fleet's machinery) so the
///     rejuvenation query has durable shard snapshots to rank.  SIGTERM
///     drains gracefully (final durable state snapshot); SIGKILL is safe —
///     the next start resumes from the newest snapshot that verifies.
///
///   ash_fleetd query --socket PATH (ping|status|margin|rejuvenation|sleep)
///              [--device N] [--duty F] [--vdd F] [--temp F] [--horizon-h F]
///              [--start-s F] [--duration-s F] [--client N]
///     One-shot client call; prints the response payload.
///
///   ash_fleetd drill --dir DIR [--requests N] [--devices N] [--shards N]
///              [--stages N] [--seed N] [--chaos protocol] [--quiet]
///     The robustness acceptance drill (the CI chaos job runs this under
///     ASan+UBSan): run the same scripted client session twice — once
///     undisturbed, once under the protocol chaos preset (dropped
///     connections, mid-frame tears, stalled writes, daemon SIGKILL +
///     restart between requests) — and require the two transcripts to be
///     byte-identical.  Exit 0 on identical transcripts, 1 otherwise.

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "ash/fleet/client.h"
#include "ash/fleet/service.h"
#include "ash/fleet/supervisor.h"
#include "ash/util/atomic_file.h"
#include "ash/util/crc32.h"
#include "ash/util/flags.h"
#include "ash/util/syscall.h"

namespace {

using namespace ash;

int usage() {
  std::fprintf(
      stderr,
      "usage: ash_fleetd serve --socket PATH --state-dir DIR\n"
      "                  [--campaign-dir DIR --shards N [--run-fleet "
      "--stages N]]\n"
      "                  [--devices N] [--margin-mv F] [--seed N] "
      "[--queue N]\n"
      "                  [--io-timeout-ms N] [--max-conns N] "
      "[--metrics FILE]\n"
      "       ash_fleetd query --socket PATH "
      "(ping|status|margin|rejuvenation|sleep)\n"
      "                  [--device N] [--duty F] [--vdd F] [--temp F] "
      "[--horizon-h F]\n"
      "                  [--start-s F] [--duration-s F] [--client N]\n"
      "       ash_fleetd drill --dir DIR [--requests N] [--devices N]\n"
      "                  [--shards N] [--stages N] [--seed N] "
      "[--chaos protocol] [--quiet]\n");
  return 2;
}

/// Make DIR/name, failing loudly.
std::string make_subdir(const std::string& dir, const std::string& name) {
  const std::string path = dir + "/" + name;
  const std::string cmd = "mkdir -p '" + path + "'";
  if (std::system(cmd.c_str()) != 0) {
    throw std::runtime_error("cannot create directory " + path);
  }
  return path;
}

/// Run the paper campaign sharded across supervised processes so the
/// rejuvenation query has durable snapshots to rank.
void run_fleet_campaign(const std::string& campaign_dir, int shards,
                        int stages, std::uint64_t seed) {
  fleet::FleetConfig config;
  config.checkpoint_dir = campaign_dir;
  config.backoff_initial_ms = 1;
  config.backoff_max_ms = 50;
  fleet::FleetSupervisor supervisor(
      config, fleet::paper_fleet_shards(shards, seed, stages));
  const fleet::FleetReport report = supervisor.run();
  if (!report.all_completed()) {
    std::fprintf(stderr, "ash_fleetd: warning: campaign left %zu shard(s) "
                         "incomplete; serving anyway\n",
                 report.shards.size());
  }
}

int run_serve(const Flags& flags) {
  fleet::ServiceConfig config;
  config.socket_path = flags.get("socket", std::string());
  config.state_dir = flags.get("state-dir", std::string());
  config.campaign_dir = flags.get("campaign-dir", std::string());
  config.shard_count = flags.get("shards", 0);
  config.devices =
      static_cast<std::uint64_t>(flags.get("devices", 64));
  config.margin = Volts{flags.get("margin-mv", 12.0) * 1e-3};
  if (flags.has("seed")) {
    config.seed = static_cast<std::uint64_t>(flags.get("seed", 0));
  }
  config.max_request_queue = flags.get("queue", 8);
  config.io_timeout_ms = flags.get("io-timeout-ms", 2000);
  config.max_connections = flags.get("max-conns", 64);
  config.metrics_path = flags.get("metrics", std::string());
  if (config.socket_path.empty() || config.state_dir.empty()) {
    std::fprintf(stderr, "ash_fleetd: serve needs --socket and --state-dir\n");
    return usage();
  }
  if (!util::writable_directory(config.state_dir)) {
    std::fprintf(stderr, "ash_fleetd: --state-dir %s: not an existing "
                         "writable directory\n",
                 config.state_dir.c_str());
    return usage();
  }
  if (flags.get("run-fleet", false)) {
    if (config.campaign_dir.empty() || config.shard_count < 1) {
      std::fprintf(stderr,
                   "ash_fleetd: --run-fleet needs --campaign-dir and "
                   "--shards\n");
      return usage();
    }
    run_fleet_campaign(config.campaign_dir, config.shard_count,
                       flags.get("stages", 11),
                       static_cast<std::uint64_t>(flags.get("seed", 0x40A0)));
  }
  fleet::Service service(config);
  std::printf("ash_fleetd: serving %llu devices on %s (sequence %llu)\n",
              static_cast<unsigned long long>(service.state().devices.size()),
              config.socket_path.c_str(),
              static_cast<unsigned long long>(service.state().sequence));
  std::fflush(stdout);
  service.run();
  std::printf("%s", service.stats().render().c_str());
  return 0;
}

int run_query(const Flags& flags) {
  const std::string socket_path = flags.get("socket", std::string());
  if (socket_path.empty() || flags.positional().size() != 2) {
    std::fprintf(stderr,
                 "ash_fleetd: query needs --socket and one verb\n");
    return usage();
  }
  fleet::ClientConfig cc;
  cc.socket_path = socket_path;
  cc.client_id = static_cast<std::uint64_t>(flags.get("client", 1));
  fleet::Client client(cc);
  const std::string& verb = flags.positional()[1];
  if (verb == "ping") {
    std::printf("pong: %s\n", client.ping() ? "yes" : "no");
  } else if (verb == "status") {
    const auto resp = client.status();
    std::printf("devices %llu windows %llu sequence %llu draining %d\n",
                static_cast<unsigned long long>(resp.devices),
                static_cast<unsigned long long>(resp.windows),
                static_cast<unsigned long long>(resp.sequence),
                resp.draining ? 1 : 0);
  } else if (verb == "margin") {
    fleet::MarginRequest req;
    req.device_id = static_cast<std::uint64_t>(flags.get("device", 0));
    req.duty = flags.get("duty", 0.5);
    req.vdd = Volts{flags.get("vdd", 1.2)};
    req.temp = Celsius{flags.get("temp", 80.0)};
    req.horizon = units::hours(flags.get("horizon-h", 87660.0));
    const auto resp = client.margin(req);
    if (resp.crosses) {
      std::printf("crosses in %.6g h (delta_vth %.4g mV of %.4g mV)\n",
                  resp.time_to_margin.value() / 3600.0,
                  resp.delta_vth.value() * 1e3, resp.margin.value() * 1e3);
    } else {
      std::printf("holds through the %.6g h horizon (delta_vth %.4g mV of "
                  "%.4g mV)\n",
                  req.horizon.value() / 3600.0, resp.delta_vth.value() * 1e3,
                  resp.margin.value() * 1e3);
    }
  } else if (verb == "rejuvenation") {
    const auto resp = client.rejuvenation(fleet::RejuvenationRequest{});
    if (resp.any) {
      std::printf("shard %d (fractional degradation %.6g)\n", resp.shard_id,
                  resp.degradation);
    } else {
      std::printf("no shard has a rankable snapshot\n");
    }
  } else if (verb == "sleep") {
    fleet::ScheduleSleepRequest req;
    req.device_id = static_cast<std::uint64_t>(flags.get("device", 0));
    req.start = Seconds{flags.get("start-s", 0.0)};
    req.duration = Seconds{flags.get("duration-s", 6.0 * 3600.0)};
    const auto resp = client.schedule_sleep(req);
    std::printf("booked: device %llu now has %llu window(s)\n",
                static_cast<unsigned long long>(req.device_id),
                static_cast<unsigned long long>(resp.windows));
  } else {
    std::fprintf(stderr, "ash_fleetd: unknown query verb '%s'\n",
                 verb.c_str());
    return usage();
  }
  return 0;
}

/// A forked daemon the drill owns: SIGKILL-able, restartable, drainable.
class DrillDaemon {
 public:
  explicit DrillDaemon(fleet::ServiceConfig config)
      : config_(std::move(config)) {}

  void start() {
    pid_ = ::fork();
    if (pid_ < 0) throw std::runtime_error("drill: fork failed");
    if (pid_ == 0) {
      try {
        fleet::Service service(config_);
        service.run();
        std::_Exit(0);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "ash_fleetd[daemon]: %s\n", e.what());
        std::_Exit(3);
      }
    }
  }

  /// SIGKILL + restart-from-newest-snapshot: the chaos hook.
  void kill_and_restart() {
    if (pid_ > 0) {
      ::kill(pid_, SIGKILL);
      int status = 0;
      (void)util::retry_eintr([&] { return ::waitpid(pid_, &status, 0); });
      pid_ = -1;
    }
    start();
  }

  /// SIGTERM and reap; returns the daemon's exit status (0 = clean drain).
  int terminate() {
    if (pid_ <= 0) return -1;
    ::kill(pid_, SIGTERM);
    int status = 0;
    (void)util::retry_eintr([&] { return ::waitpid(pid_, &status, 0); });
    pid_ = -1;
    return WIFEXITED(status) ? WEXITSTATUS(status) : 128 + WTERMSIG(status);
  }

 private:
  fleet::ServiceConfig config_;
  pid_t pid_ = -1;
};

/// The scripted query/mutation mix both drill sessions replay.
std::string run_session(DrillDaemon& daemon, const std::string& socket_path,
                        const fleet::FleetFaultPlan& chaos, int requests,
                        int devices, bool quiet) {
  fleet::ClientConfig cc;
  cc.socket_path = socket_path;
  cc.client_id = 42;
  cc.chaos = chaos;
  cc.kill_daemon = [&daemon] { daemon.kill_and_restart(); };
  fleet::Client client(cc);
  for (int i = 0; i < requests; ++i) {
    const auto device = static_cast<std::uint64_t>(i % devices);
    switch (i % 5) {
      case 0:
        (void)client.status();
        break;
      case 1: {
        fleet::MarginRequest req;
        req.device_id = device;
        req.duty = 0.25 * (1 + i % 3);
        (void)client.margin(req);
        break;
      }
      case 2: {
        fleet::ScheduleSleepRequest req;
        req.device_id = device;
        req.start = Seconds{3600.0 * i};
        req.duration = units::hours(6.0);
        (void)client.schedule_sleep(req);
        break;
      }
      case 3:
        (void)client.rejuvenation(fleet::RejuvenationRequest{});
        break;
      default:
        (void)client.ping();
        break;
    }
  }
  (void)client.status();  // final durable-state fingerprint
  if (!quiet) std::printf("%s", client.stats().render().c_str());
  return client.transcript();
}

int run_drill(const Flags& flags) {
  const std::string dir = flags.get("dir", std::string());
  if (dir.empty() || !util::writable_directory(dir)) {
    std::fprintf(stderr,
                 "ash_fleetd: drill needs --dir (existing writable)\n");
    return usage();
  }
  const int requests = flags.get("requests", 20);
  const int devices = flags.get("devices", 8);
  const int shards = flags.get("shards", 2);
  const int stages = flags.get("stages", 5);
  const auto seed = static_cast<std::uint64_t>(flags.get("seed", 0x40A0));
  const bool quiet = flags.get("quiet", false);
  const fleet::FleetFaultPlan chaos =
      fleet::FleetFaultPlan::by_name(flags.get("chaos",
                                               std::string("protocol")));

  std::string transcripts[2];
  const char* names[2] = {"clean", "chaos"};
  for (int session = 0; session < 2; ++session) {
    const std::string root = make_subdir(dir, names[session]);
    fleet::ServiceConfig config;
    config.socket_path = root + "/fleetd.sock";
    config.state_dir = make_subdir(root, "state");
    config.campaign_dir = make_subdir(root, "campaign");
    config.shard_count = shards;
    config.devices = static_cast<std::uint64_t>(devices);
    config.seed = seed;
    // Tight I/O deadline so the chaos stall (400 ms) triggers a real
    // slow-loris eviction; honest requests never park that long.
    config.io_timeout_ms = 150;
    run_fleet_campaign(config.campaign_dir, shards, stages, seed);
    DrillDaemon daemon(config);
    daemon.start();
    transcripts[session] = run_session(
        daemon, config.socket_path,
        session == 0 ? fleet::FleetFaultPlan::none() : chaos, requests,
        devices, quiet);
    const int exit_status = daemon.terminate();
    if (exit_status != 0) {
      std::fprintf(stderr, "ash_fleetd: %s daemon exited %d\n",
                   names[session], exit_status);
      return 1;
    }
  }

  const bool identical = transcripts[0] == transcripts[1];
  std::printf("clean transcript: %zu bytes crc32 %08x\n",
              transcripts[0].size(), util::crc32(transcripts[0]));
  std::printf("chaos transcript: %zu bytes crc32 %08x\n",
              transcripts[1].size(), util::crc32(transcripts[1]));
  std::printf("transcripts %s\n",
              identical ? "identical" : "DIVERGED");
  return identical ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Flags flags(argc, argv);
    flags.check_known(
        {"socket", "state-dir", "campaign-dir", "shards", "run-fleet",
         "stages", "devices", "margin-mv", "seed", "queue", "io-timeout-ms",
         "max-conns", "metrics", "device", "duty", "vdd", "temp", "horizon-h",
         "start-s", "duration-s", "client", "dir", "requests", "chaos",
         "quiet"});
    if (flags.positional().empty()) return usage();
    const std::string& mode = flags.positional()[0];
    if (mode == "serve") return run_serve(flags);
    if (mode == "query") return run_query(flags);
    if (mode == "drill") return run_drill(flags);
    std::fprintf(stderr, "ash_fleetd: unknown mode '%s'\n", mode.c_str());
    return usage();
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "ash_fleetd: %s\n", e.what());
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ash_fleetd: %s\n", e.what());
    return 2;
  }
}
