#!/usr/bin/env python3
"""ash-lint: determinism & physical-units static analysis for the ash lab.

The virtual lab's headline guarantee is bit-exact reproducibility: the same
seed must give the same campaign on any machine, any thread count, any
checkpoint/resume split.  Most regressions against that guarantee come from
a handful of recognisable source patterns, so we lint for them:

  wall-clock      Wall-clock/time sources (std::chrono::*_clock, time(),
                  gettimeofday, ...) in simulation code.  Simulated time is
                  the only clock the models may read; host time is allowed
                  only in the observability layer (src/obs/) and in bench
                  harness timers (bench/, tests/obs/).

  rng             Unseeded or global RNG: rand(), srand(), drand48(),
                  std::random_device.  All randomness must flow through
                  ash::Rng / derive_seed (src/util/.../random.h) so streams
                  are named, seeded and replayable.

  unordered-iter  Range-for over a std::unordered_{map,set} (or an alias of
                  one declared in the same file).  Unordered iteration order
                  is implementation-defined, so any result merged from such
                  a loop can differ across standard libraries; iterate a
                  sorted view or an ordered container instead.

  float-physics   `float` in physics code (src/bti, src/fpga, src/tb,
                  src/mc, src/core).  The models are calibrated in double
                  precision; a single-precision narrowing silently changes
                  trajectories.  The rule also polices exponentials: the
                  float-precision exp family (expf, exp2f, expm1f) and any
                  homebrew exponential approximation (a float/double
                  function named like fast_exp / exp_approx) are findings
                  in physics code *and* src/util — except inside
                  src/util/include/ash/util/fast_exp.h, the one sanctioned
                  approximate exponential.  Calling util::fast_exp is fine;
                  defining a second one is not.

  raw-double-api  A function parameter spelled `double <name>_{s,v,k,c,hz}`
                  in a *public* section of a public header of the physics
                  modules (src/{bti,fpga,tb,mc}/include).  Unit-suffixed
                  quantities crossing a module boundary must use the strong
                  types from ash/util/units.h (Seconds, Volts, Kelvin,
                  Celsius, Hertz).  Private helpers, data members and return
                  values are out of scope (see DESIGN.md sec. 9).

  unchecked-io    A std::ofstream/std::fstream variable whose stream state
                  is never examined anywhere in the file: no `!s`, no
                  .fail()/.good()/.bad()/.is_open()/.rdstate(), no
                  .exceptions() arming, no boolean test.  A full disk or a
                  torn write then fails silently and the campaign "result"
                  is garbage; check the stream after writing, or go through
                  util::atomic_write_file which throws on short writes.
                  The heuristic is file-scoped by name, so a check of any
                  same-named stream in the file counts.

  eintr           A bare blocking syscall (::read, ::write, ::poll,
                  ::waitpid, ::accept/::accept4, ::connect, ::recv,
                  ::send, ::nanosleep) in src/fleet/, outside a
                  util::retry_eintr wrapper.  The fleet layer mixes slow
                  syscalls with real signals (SIGCHLD from dying workers,
                  SIGTERM during drain), so EINTR is routine there and a
                  bare call treats the spurious failure as a real one.
                  ::close is deliberately exempt: retrying close can close
                  a descriptor the kernel already reused.

  metric-name     A metric registered (.counter/.gauge/.histogram) under a
                  literal name outside `[a-z0-9_.]+`: dots namespace,
                  underscores separate words; anything else breaks the
                  scrape-prefix filter and the key=value dump grammar.
                  Additionally, *any* registration call inside one of the
                  instrumented hot-path kernel files (the ScopedKernelTimer
                  sites) is flagged: registration takes the registry mutex
                  per call — register once at setup and reuse the returned
                  reference.  Computed names elsewhere are skipped (they
                  are validated at runtime by what they render into).

Any finding can be suppressed on its line with a trailing
`// ash-lint: allow(<rule>): <reason>` (comma-separate several rules).
The reason is mandatory: a bare `allow(<rule>)` does not suppress — it is
itself reported, because an unexplained escape is unreviewable.

Exit status is 0 when no findings survive suppression, 1 when any
finding does, and 2 on usage/internal errors (bad --root, no files
matched, unknown flags).  `--json` emits machine-readable findings
for CI.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from dataclasses import dataclass, asdict

CXX_EXTENSIONS = (".h", ".hpp", ".cpp", ".cc", ".cxx")
DEFAULT_PATHS = ("src", "tools", "bench", "tests")

# The linter's own test fixtures intentionally violate every rule.
EXCLUDED_PARTS = ("lint/fixtures", "build")

ALLOW_RE = re.compile(
    r"ash-lint:\s*allow\(([a-z0-9_,\- ]+)\)(\s*:\s*(\S.*))?")

RULES = (
    "wall-clock",
    "rng",
    "unordered-iter",
    "float-physics",
    "raw-double-api",
    "unchecked-io",
    "eintr",
    "metric-name",
)


@dataclass
class Finding:
    rule: str
    path: str
    line: int
    message: str
    snippet: str


def strip_code(text: str) -> str:
    """Blank out comments, string and char literals, preserving line layout.

    Replaced characters become spaces so that line/column arithmetic on the
    result still maps onto the original file.
    """
    out = []
    i = 0
    n = len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if ch == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if ch == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if ch == '"':
                state = "string"
                out.append(" ")
                i += 1
                continue
            if ch == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(ch)
        elif state == "line_comment":
            if ch == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block_comment":
            if ch == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if ch == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if ch == "\\":
                out.append("  ")
                i += 2
                continue
            if ch == quote:
                state = "code"
            out.append("\n" if ch == "\n" else " ")
        i += 1
    return "".join(out)


def allowed_rules(source_line: str) -> tuple[set[str], bool]:
    """Rules named by an allow() escape on the line, and whether the
    escape carries the mandatory `: <reason>` tail."""
    m = ALLOW_RE.search(source_line)
    if not m:
        return set(), False
    rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
    return rules, bool(m.group(3))


class FileLint:
    """Per-file context shared by all rules."""

    def __init__(self, path: str, rel: str, text: str):
        self.path = path
        self.rel = rel.replace(os.sep, "/")
        self.text = text
        self.code = strip_code(text)
        self.lines = text.split("\n")
        self.code_lines = self.code.split("\n")
        self.findings: list[Finding] = []
        self.suppressed: list[Finding] = []

    def report(self, rule: str, line_no: int, message: str) -> None:
        src = self.lines[line_no - 1] if line_no - 1 < len(self.lines) else ""
        f = Finding(rule, self.rel, line_no, message, src.strip()[:160])
        rules, has_reason = allowed_rules(src)
        if rule in rules:
            if has_reason:
                self.suppressed.append(f)
                return
            f = Finding(
                rule, self.rel, line_no,
                f"suppression escape for '{rule}' carries no reason: "
                f"write `// ash-lint: allow({rule}): <why>` — an "
                "unexplained escape is unreviewable",
                src.strip()[:160])
        self.findings.append(f)


# --------------------------------------------------------------------------
# Rule: wall-clock
# --------------------------------------------------------------------------

WALL_CLOCK_PATTERNS = (
    (re.compile(r"std::chrono::(system|steady|high_resolution)_clock"),
     "std::chrono clock"),
    (re.compile(r"\bgettimeofday\s*\("), "gettimeofday()"),
    (re.compile(r"\bclock_gettime\s*\("), "clock_gettime()"),
    (re.compile(r"(?<![\w:])std::time\s*\("), "std::time()"),
    (re.compile(r"(?<![\w:.])time\s*\(\s*(NULL|nullptr|0)?\s*\)"), "time()"),
    (re.compile(r"(?<![\w:.])clock\s*\(\s*\)"), "clock()"),
)

# src/fleet/ is process supervision: heartbeat deadlines and restart
# backoffs pace real worker processes, so host time is the correct clock
# there.  Nothing in fleet feeds the simulated physics (the payload
# determinism tests pin that).
WALL_CLOCK_ALLOWED_PREFIXES = ("src/obs/", "src/fleet/", "bench/",
                               "tests/obs/")


def rule_wall_clock(fl: FileLint) -> None:
    if fl.rel.startswith(WALL_CLOCK_ALLOWED_PREFIXES):
        return
    for no, line in enumerate(fl.code_lines, start=1):
        for pat, what in WALL_CLOCK_PATTERNS:
            if pat.search(line):
                fl.report(
                    "wall-clock", no,
                    f"{what} in simulation code: models must use simulated "
                    "time (obs::set_sim_now / phase clocks), not host time")
                break


# --------------------------------------------------------------------------
# Rule: rng
# --------------------------------------------------------------------------

RNG_PATTERNS = (
    (re.compile(r"(?<![\w:.])s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"\bdrand48\s*\("), "drand48()"),
    (re.compile(r"std::random_device"), "std::random_device"),
)

RNG_ALLOWED_PREFIXES = ("src/util/",)


def rule_rng(fl: FileLint) -> None:
    if fl.rel.startswith(RNG_ALLOWED_PREFIXES):
        return
    for no, line in enumerate(fl.code_lines, start=1):
        for pat, what in RNG_PATTERNS:
            if pat.search(line):
                fl.report(
                    "rng", no,
                    f"{what}: all randomness must come from ash::Rng with a "
                    "seed derived via derive_seed (see ash/util/random.h)")
                break


# --------------------------------------------------------------------------
# Rule: unordered-iter
# --------------------------------------------------------------------------

UNORDERED_DECL_RE = re.compile(
    r"std::unordered_(?:map|set|multimap|multiset)\s*<[^;={]*>[&\s]+(\w+)\s*[;={(]")
UNORDERED_ALIAS_RE = re.compile(
    r"using\s+(\w+)\s*=\s*std::unordered_(?:map|set|multimap|multiset)\b")
RANGE_FOR_RE = re.compile(r"\bfor\s*\(([^;]*?):([^;]*)\)\s*[{]?")


def rule_unordered_iter(fl: FileLint) -> None:
    # Names (variables and type aliases) known to be unordered in this file.
    unordered_vars: set[str] = set()
    alias_types: set[str] = set()
    for line in fl.code_lines:
        m = UNORDERED_DECL_RE.search(line)
        if m:
            unordered_vars.add(m.group(1))
        m = UNORDERED_ALIAS_RE.search(line)
        if m:
            alias_types.add(m.group(1))
    alias_decl_res = [
        re.compile(r"\b" + re.escape(t) + r"[&\s]+(\w+)\s*[;={(]")
        for t in alias_types
    ]
    for line in fl.code_lines:
        for pat in alias_decl_res:
            m = pat.search(line)
            if m:
                unordered_vars.add(m.group(1))

    for no, line in enumerate(fl.code_lines, start=1):
        m = RANGE_FOR_RE.search(line)
        if not m:
            continue
        range_expr = m.group(2).strip()
        tail = range_expr.split(".")[-1].split("->")[-1]
        tail_name = re.match(r"(\w+)", tail)
        direct_unordered = "unordered_" in range_expr
        if direct_unordered or (tail_name and tail_name.group(1)
                                in unordered_vars):
            fl.report(
                "unordered-iter", no,
                f"range-for over unordered container '{range_expr}': "
                "iteration order is implementation-defined; iterate a "
                "sorted view or an ordered container when results merge")


# --------------------------------------------------------------------------
# Rule: float-physics
# --------------------------------------------------------------------------

FLOAT_RE = re.compile(r"(?<![\w.])float\b")
PHYSICS_PREFIXES = ("src/bti/", "src/fpga/", "src/tb/", "src/mc/",
                    "src/core/")

# The exponential half of the rule: float-precision exp family calls, and
# definitions of a second approximate exponential.  Calls to the sanctioned
# util::fast_exp never match (a call site has no leading float/double).
EXPF_CALL_RE = re.compile(
    r"(?<![\w.])(?:std::)?(expf|exp2f|expm1f|exp10f)\s*\(")
FAST_EXP_DEF_RE = re.compile(
    r"\b(?:float|double)\s+"
    r"(\w*(?:fast|approx|quick|cheap)\w*?exp\w*|\w*exp\w*(?:approx|fast)\w*)"
    r"\s*\(")
# The one place a non-std::exp exponential is allowed to live.
FAST_EXP_HOME = "src/util/include/ash/util/fast_exp.h"
EXP_SCOPE_PREFIXES = PHYSICS_PREFIXES + ("src/util/",)


def rule_float_physics(fl: FileLint) -> None:
    in_physics = fl.rel.startswith(PHYSICS_PREFIXES)
    in_exp_scope = fl.rel.startswith(EXP_SCOPE_PREFIXES)
    if not in_exp_scope:
        return
    for no, line in enumerate(fl.code_lines, start=1):
        if in_physics and FLOAT_RE.search(line):
            fl.report(
                "float-physics", no,
                "float in a physics path: the models are calibrated in "
                "double precision; use double (or a units.h strong type)")
        if fl.rel == FAST_EXP_HOME:
            continue
        m = EXPF_CALL_RE.search(line)
        if m:
            fl.report(
                "float-physics", no,
                f"{m.group(1)} is a single-precision exponential; use "
                "std::exp, or route approximate physics through "
                "util::fast_exp (the one sanctioned fast exponential)")
        m = FAST_EXP_DEF_RE.search(line)
        if m:
            fl.report(
                "float-physics", no,
                f"'{m.group(1)}' looks like a second approximate "
                "exponential; util/fast_exp.h is the only allowed site "
                "for a non-std::exp implementation — call util::fast_exp "
                "instead")


# --------------------------------------------------------------------------
# Rule: raw-double-api
# --------------------------------------------------------------------------

PUBLIC_HEADER_RE = re.compile(r"src/(bti|fpga|tb|mc)/include/.*\.h$")
RAW_DOUBLE_PARAM_RE = re.compile(r"\bdouble\s+(\w+_(?:s|v|k|c|hz))\b")
UNIT_TYPE_FOR_SUFFIX = {
    "s": "Seconds",
    "v": "Volts",
    "k": "Kelvin",
    "c": "Celsius",
    "hz": "Hertz",
}


def rule_raw_double_api(fl: FileLint) -> None:
    if not PUBLIC_HEADER_RE.search(fl.rel):
        return

    # Walk the stripped code, tracking (a) whether we are inside a
    # parameter list (paren depth > 0 immediately after an identifier) and
    # (b) the current access level of the innermost class/struct.
    #
    # scope_stack holds one entry per open brace: "class:<access>",
    # "struct:<access>" or "other".
    scope_stack: list[list[str]] = []
    pending: str | None = None  # class/struct seen, brace not yet opened
    paren_depth = 0

    def current_access() -> str:
        for entry in reversed(scope_stack):
            if entry[0] in ("class", "struct"):
                return entry[1]
        return "public"  # namespace scope: free functions are public API

    code = fl.code
    line_no = 1
    i = 0
    n = len(code)
    access_re = re.compile(r"\b(public|protected|private)\s*:")
    class_re = re.compile(r"\b(class|struct)\s+(\w+)")

    # Pre-scan each line for access specifiers / class heads, then walk
    # braces and parens character by character on the same line.
    for raw_line in fl.code_lines:
        cm = class_re.search(raw_line)
        if cm and ";" not in raw_line[cm.end():].split("{")[0]:
            pending = cm.group(1)
        am = access_re.search(raw_line)
        if am:
            for entry in reversed(scope_stack):
                if entry[0] in ("class", "struct"):
                    entry[1] = am.group(1)
                    break

        for col, ch in enumerate(raw_line):
            if ch == "{":
                if pending is not None:
                    scope_stack.append(
                        [pending,
                         "private" if pending == "class" else "public"])
                    pending = None
                else:
                    scope_stack.append(["other", ""])
            elif ch == "}":
                if scope_stack:
                    scope_stack.pop()
            elif ch == "(":
                paren_depth += 1
            elif ch == ")":
                paren_depth = max(0, paren_depth - 1)
            elif ch == "d" and paren_depth > 0:
                m = RAW_DOUBLE_PARAM_RE.match(raw_line, col)
                if m and current_access() == "public":
                    suffix = m.group(1).rsplit("_", 1)[1]
                    want = UNIT_TYPE_FOR_SUFFIX[suffix]
                    fl.report(
                        "raw-double-api", line_no,
                        f"parameter 'double {m.group(1)}' on a public API: "
                        f"use ash::{want} from ash/util/units.h so the unit "
                        "is part of the type")
        line_no += 1


# --------------------------------------------------------------------------
# Rule: unchecked-io
# --------------------------------------------------------------------------

# Write-capable file streams only: ostringstream cannot fail meaningfully
# and ifstream misuse shows up as parse failures downstream.
WRITE_STREAM_DECL_RE = re.compile(r"\bstd::o?fstream\s+(\w+)\s*[({]")
STATE_CHECK_TEMPLATES = (
    r"!\s*{n}\b",                                              # if (!os)
    r"\b{n}\s*\.\s*(?:fail|good|bad|is_open|rdstate|exceptions)\s*\(",
    r"\b(?:if|while)\s*\(\s*{n}\s*[)&|]",                      # if (os) ...
)


def rule_unchecked_io(fl: FileLint) -> None:
    for no, line in enumerate(fl.code_lines, start=1):
        m = WRITE_STREAM_DECL_RE.search(line)
        if not m:
            continue
        name = re.escape(m.group(1))
        if any(re.search(t.format(n=name), fl.code)
               for t in STATE_CHECK_TEMPLATES):
            continue
        fl.report(
            "unchecked-io", no,
            f"write stream '{m.group(1)}' is never state-checked: a full "
            "disk or torn write fails silently; test the stream after "
            f"writing (e.g. `if (!{m.group(1)})`) or use "
            "util::atomic_write_file")


# --------------------------------------------------------------------------
# Rule: eintr
# --------------------------------------------------------------------------

EINTR_SYSCALL_RE = re.compile(
    r"::(read|write|poll|waitpid|accept4?|connect|recv|send|nanosleep)\s*\(")

# The process/socket layer is the one place slow syscalls meet real
# signals; everywhere else the repo stays on C++ iostream/filesystem APIs.
EINTR_SCOPED_PREFIXES = ("src/fleet/",)


def rule_eintr(fl: FileLint) -> None:
    if not fl.rel.startswith(EINTR_SCOPED_PREFIXES):
        return
    for no, line in enumerate(fl.code_lines, start=1):
        m = EINTR_SYSCALL_RE.search(line)
        if not m:
            continue
        # The wrapper and the call usually share a line; clang-format may
        # push the lambda body one or two lines down.
        window = fl.code_lines[max(0, no - 3):no]
        if any("retry_eintr" in w for w in window):
            continue
        fl.report(
            "eintr", no,
            f"bare ::{m.group(1)}() can fail spuriously with EINTR when a "
            "signal lands (SIGCHLD from a dying worker, SIGTERM during "
            "drain); wrap the call in util::retry_eintr "
            "(ash/util/syscall.h).  ::close stays bare by design")


# --------------------------------------------------------------------------
# Rule: metric-name
# --------------------------------------------------------------------------

METRIC_REG_RE = re.compile(r"[\w)\]>]\s*\.\s*(counter|gauge|histogram)\s*\(")
METRIC_LITERAL_RE = re.compile(
    r"\.\s*(?:counter|gauge|histogram)\s*\(\s*\"([^\"]*)\"")
METRIC_NAME_OK_RE = re.compile(r"^[a-z0-9_.]+$")

# The ScopedKernelTimer sites: per-sample hot paths whose cost is exactly
# what the profiler measures.  A registration there takes the registry
# mutex inside the timed region — register at setup, dereference in the
# kernel (see fleet::Service's latency_ array for the pattern).
METRIC_HOT_KERNEL_FILES = (
    "src/bti/trap_ensemble.cpp",
    "src/fpga/ring_oscillator.cpp",
    "src/tb/experiment_runner.cpp",
    "src/mc/system.cpp",
)


def rule_metric_name(fl: FileLint) -> None:
    hot = fl.rel in METRIC_HOT_KERNEL_FILES
    for no, line in enumerate(fl.code_lines, start=1):
        m = METRIC_REG_RE.search(line)
        if not m:
            continue
        if hot:
            fl.report(
                "metric-name", no,
                f".{m.group(1)}() inside an instrumented hot-path kernel: "
                "registration locks the registry mutex per call and bills "
                "the kernel being profiled; register once at setup and "
                "reuse the returned reference")
            continue
        src = fl.lines[no - 1] if no - 1 < len(fl.lines) else ""
        lm = METRIC_LITERAL_RE.search(src)
        if not lm:
            continue  # computed name: validated by what it renders into
        name = lm.group(1)
        if not METRIC_NAME_OK_RE.match(name):
            fl.report(
                "metric-name", no,
                f"metric name \"{name}\" violates [a-z0-9_.]+: dots "
                "namespace, underscores separate words; anything else "
                "breaks the scrape-prefix filter and the key=value dump "
                "grammar")


RULE_FUNCS = {
    "wall-clock": rule_wall_clock,
    "rng": rule_rng,
    "unordered-iter": rule_unordered_iter,
    "float-physics": rule_float_physics,
    "raw-double-api": rule_raw_double_api,
    "unchecked-io": rule_unchecked_io,
    "eintr": rule_eintr,
    "metric-name": rule_metric_name,
}


def lint_file(path: str, rel: str, rules) -> FileLint:
    with open(path, "r", encoding="utf-8", errors="replace") as f:
        text = f.read()
    fl = FileLint(path, rel, text)
    for rule in rules:
        RULE_FUNCS[rule](fl)
    return fl


def iter_source_files(root: str, paths):
    for base in paths:
        full = os.path.join(root, base)
        if os.path.isfile(full):
            yield full, os.path.relpath(full, root)
            continue
        for dirpath, dirnames, filenames in os.walk(full):
            rel_dir = os.path.relpath(dirpath, root).replace(os.sep, "/")
            dirnames[:] = sorted(
                d for d in dirnames
                if not any(part in f"{rel_dir}/{d}" for part in EXCLUDED_PARTS))
            for name in sorted(filenames):
                if name.endswith(CXX_EXTENSIONS):
                    p = os.path.join(dirpath, name)
                    yield p, os.path.relpath(p, root)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="ash_lint",
        description="determinism & units static analysis for the ash lab")
    parser.add_argument("paths", nargs="*", default=list(DEFAULT_PATHS),
                        help="files or directories relative to --root "
                        f"(default: {' '.join(DEFAULT_PATHS)})")
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    parser.add_argument("--json", action="store_true",
                        help="emit findings as JSON on stdout")
    parser.add_argument("--rule", action="append", choices=RULES,
                        help="run only the named rule(s)")
    parser.add_argument("--list-rules", action="store_true",
                        help="list rule names and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for r in RULES:
            print(r)
        return 0

    if not os.path.isdir(args.root):
        print(f"ash_lint: --root {args.root} is not a directory",
              file=sys.stderr)
        return 2

    rules = args.rule if args.rule else list(RULES)
    findings: list[Finding] = []
    suppressed = 0
    files = 0
    for path, rel in iter_source_files(args.root, args.paths):
        files += 1
        fl = lint_file(path, rel, rules)
        findings.extend(fl.findings)
        suppressed += len(fl.suppressed)

    if files == 0:
        print("ash_lint: no source files matched", file=sys.stderr)
        return 2

    findings.sort(key=lambda f: (f.path, f.line, f.rule))

    if args.json:
        counts: dict[str, int] = {}
        for f in findings:
            counts[f.rule] = counts.get(f.rule, 0) + 1
        print(json.dumps({
            "findings": [asdict(f) for f in findings],
            "counts": counts,
            "files_scanned": files,
            "suppressed": suppressed,
        }, indent=2))
    else:
        for f in findings:
            print(f"{f.path}:{f.line}: [{f.rule}] {f.message}")
            if f.snippet:
                print(f"    {f.snippet}")
        tail = f"{files} files scanned, {len(findings)} finding(s)"
        if suppressed:
            tail += f", {suppressed} suppressed"
        print(tail, file=sys.stderr)

    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
