/// ash_fleet — supervised multi-process fleet runner.
///
/// Shards the paper's five-chip campaign (extended cyclically) across
/// forked worker processes, each advancing its shard phase by phase with a
/// durable CRC-framed checkpoint after every phase.  The supervisor
/// restarts crashed or hung workers from the newest snapshot that still
/// verifies (capped exponential backoff, quarantine after --max-restarts
/// strikes) and ships a fleet report either way.
///
///   ash_fleet --dir DIR [--shards 5] [--stages 75] [--seed N]
///             [--phases-per-ckpt 1] [--max-restarts 3]
///             [--heartbeat-ms 5000] [--backoff-ms 10] [--backoff-max-ms 500]
///             [--chaos none|kill|torn|full] [--chaos-seed N]
///             [--payload FILE] [--metrics FILE] [--profile] [--quiet]
///
/// --dir must name an existing writable directory; it holds the durable
/// snapshots and is how a re-run of the same command resumes after a kill
/// of the whole fleet (ctrl-C included).  --chaos injects the named
/// process-fault scenario into the workers themselves (SIGKILL mid-run,
/// heartbeat stalls, snapshot corruption) — the supervisor cannot tell
/// injected chaos from real failures, which is the point.
///
/// The report's *payload* (per-shard completion, fault tallies, sample
/// logs) is deterministic in (--shards, --stages, --seed, chaos plan); the
/// printed payload CRC is the one-line fingerprint two runs can compare.
/// Exit status: 0 all shards completed, 1 some shard quarantined, 2 usage.

#include <cstdio>
#include <string>

#include "ash/fleet/supervisor.h"
#include "ash/obs/metrics.h"
#include "ash/obs/profile.h"
#include "ash/util/atomic_file.h"
#include "ash/util/flags.h"

namespace {

using namespace ash;

int usage() {
  std::fprintf(
      stderr,
      "usage: ash_fleet --dir DIR [--shards N] [--stages N] [--seed N]\n"
      "                 [--phases-per-ckpt N] [--max-restarts N]\n"
      "                 [--heartbeat-ms N] [--backoff-ms N] "
      "[--backoff-max-ms N]\n"
      "                 [--chaos none|kill|torn|full] [--chaos-seed N]\n"
      "                 [--payload FILE] [--metrics FILE] [--profile] "
      "[--quiet]\n"
      "--dir must be an existing writable directory (holds durable "
      "snapshots)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Flags flags(argc, argv);
    flags.check_known({"dir", "shards", "stages", "seed", "phases-per-ckpt",
                       "max-restarts", "heartbeat-ms", "backoff-ms",
                       "backoff-max-ms", "chaos", "chaos-seed", "payload",
                       "metrics", "profile", "quiet"});
    if (!flags.positional().empty()) return usage();

    const std::string dir = flags.get("dir", std::string());
    if (dir.empty()) {
      std::fprintf(stderr, "ash_fleet: --dir is required\n");
      return usage();
    }
    if (!util::writable_directory(dir)) {
      std::fprintf(stderr,
                   "ash_fleet: --dir %s: not an existing writable directory\n",
                   dir.c_str());
      return usage();
    }

    fleet::FleetConfig config;
    config.checkpoint_dir = dir;
    config.phases_per_checkpoint = flags.get("phases-per-ckpt", 1);
    config.max_restarts = flags.get("max-restarts", 3);
    config.heartbeat_timeout_ms = flags.get("heartbeat-ms", 5000);
    config.backoff_initial_ms = flags.get("backoff-ms", 10);
    config.backoff_max_ms = flags.get("backoff-max-ms", 500);
    config.chaos =
        fleet::FleetFaultPlan::by_name(flags.get("chaos", std::string("none")));
    if (flags.has("chaos-seed")) {
      config.chaos.seed = static_cast<std::uint64_t>(
          flags.get("chaos-seed", 0));
    }

    const auto shards = fleet::paper_fleet_shards(
        flags.get("shards", 5),
        static_cast<std::uint64_t>(flags.get("seed", 0x40A0)),
        flags.get("stages", 75));

    if (flags.get("profile", false)) obs::enable_profiling(true);

    fleet::FleetSupervisor supervisor(config, shards);
    const fleet::FleetReport report = supervisor.run();

    if (!flags.get("quiet", false)) {
      std::printf("%s", report.render().c_str());
    }
    std::printf("payload crc32 %08x (%zu bytes, %zu shards)\n",
                report.payload_crc(), report.payload().size(),
                report.shards.size());

    const std::string payload_path = flags.get("payload", std::string());
    if (!payload_path.empty()) {
      util::atomic_write_file(payload_path, report.payload());
      std::printf("payload written to %s\n", payload_path.c_str());
    }
    const std::string metrics_path = flags.get("metrics", std::string());
    if (!metrics_path.empty()) {
      report.stats.publish(obs::registry());
      // Atomic (tmp + rename): a reader polling the file mid-write — or a
      // run killed here — must never observe a half-written snapshot.
      util::atomic_write_file(metrics_path,
                              obs::registry().snapshot().render());
      std::printf("metrics written to %s\n", metrics_path.c_str());
    }
    if (flags.get("profile", false)) {
      std::printf("%s", obs::profile_table().c_str());
    }
    return report.all_completed() ? 0 : 1;
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "ash_fleet: %s\n", e.what());
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ash_fleet: %s\n", e.what());
    return 2;
  }
}
