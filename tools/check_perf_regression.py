#!/usr/bin/env python3
"""Gate the CI perf-smoke job on the trap-kernel hot path.

Compares a fresh ``bench_perf_kernels --json`` run against the checked-in
baseline (bench/baselines/BENCH_kernels.json) and fails when the
``bti.trap_ensemble.evolve`` ns/call regressed beyond the allowed factor.
The 2x default absorbs runner-to-runner noise (shared CI boxes easily
drift +/-50%) while still catching the class of regression this PR's
refactor guards against — an accidental return to per-step exp() evaluation
is a >5x hit.

Usage: check_perf_regression.py CURRENT.json [BASELINE.json] [--factor F]
Exit codes: 0 ok, 1 regression, 2 bad input.
"""

import json
import sys

KERNEL = "bti.trap_ensemble.evolve"
DEFAULT_BASELINE = "bench/baselines/BENCH_kernels.json"
DEFAULT_FACTOR = 2.0


def ns_per_call(path: str) -> float:
    with open(path) as f:
        doc = json.load(f)
    for k in doc.get("kernels", []):
        if k.get("name") == KERNEL:
            return float(k["ns_per_call"])
    raise KeyError(f"{path}: no kernel named {KERNEL!r}")


def main(argv: list[str]) -> int:
    args = [a for a in argv[1:] if not a.startswith("--")]
    factor = DEFAULT_FACTOR
    for a in argv[1:]:
        if a.startswith("--factor="):
            factor = float(a.split("=", 1)[1])
    if not args:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    current_path = args[0]
    baseline_path = args[1] if len(args) > 1 else DEFAULT_BASELINE

    try:
        current = ns_per_call(current_path)
        baseline = ns_per_call(baseline_path)
    except (OSError, ValueError, KeyError) as err:
        print(f"check_perf_regression: {err}", file=sys.stderr)
        return 2

    ratio = current / baseline if baseline > 0 else float("inf")
    verdict = "OK" if ratio <= factor else "REGRESSION"
    print(
        f"{KERNEL}: current {current:.0f} ns/call, baseline "
        f"{baseline:.0f} ns/call, ratio {ratio:.2f}x "
        f"(limit {factor:.2f}x) -> {verdict}"
    )
    return 0 if ratio <= factor else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
