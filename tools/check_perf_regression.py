#!/usr/bin/env python3
"""Gate the CI perf-smoke job on the in-library kernel timers.

Compares a fresh ``bench_perf_kernels --json`` run against the checked-in
baseline (bench/baselines/BENCH_kernels.json):

* every kernel present in BOTH files must stay within ``--factor`` of its
  baseline ns/call (2x default absorbs runner-to-runner noise; shared CI
  boxes easily drift +/-50%).  Kernels present in only one file — a name
  added by a newer bench or retired from an older one — are reported and
  skipped, never fatal, so the baseline and the binary can be refreshed in
  either order;
* the primary kernel ``bti.trap_ensemble.evolve`` must exist in both
  files — a run that lost the hot path entirely is a bad input (exit 2),
  not a pass;
* when the current run carries the batch-engine population summary, the
  speedup floors are enforced as hard gates: ``population_speedup_exact``
  >= 5.0 and ``population_speedup_fast`` >= 8.0 (the PR-9 acceptance
  floors; the measured margin is >20x, so tripping these means the fused
  sweep degenerated to per-chip work, which no noise factor should
  forgive).

Usage: check_perf_regression.py CURRENT.json [BASELINE.json] [--factor F]
Exit codes: 0 ok, 1 regression, 2 bad input.
"""

import json
import sys

PRIMARY_KERNEL = "bti.trap_ensemble.evolve"
DEFAULT_BASELINE = "bench/baselines/BENCH_kernels.json"
DEFAULT_FACTOR = 2.0
SPEEDUP_FLOORS = {
    "population_speedup_exact": 5.0,
    "population_speedup_fast": 8.0,
}


def load_doc(path: str) -> dict:
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, dict):
        raise ValueError(f"{path}: top level is not a JSON object")
    return doc


def kernel_table(path: str, doc: dict) -> dict:
    """name -> ns/call for every well-formed kernel row; unknown names are
    data, not errors."""
    table = {}
    for k in doc.get("kernels", []):
        name = k.get("name")
        if not isinstance(name, str) or "ns_per_call" not in k:
            continue
        table[name] = float(k["ns_per_call"])
    if PRIMARY_KERNEL not in table:
        raise KeyError(f"{path}: no kernel named {PRIMARY_KERNEL!r}")
    return table


def main(argv: list[str]) -> int:
    args = [a for a in argv[1:] if not a.startswith("--")]
    factor = DEFAULT_FACTOR
    for a in argv[1:]:
        if a.startswith("--factor="):
            factor = float(a.split("=", 1)[1])
    if not args:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    current_path = args[0]
    baseline_path = args[1] if len(args) > 1 else DEFAULT_BASELINE

    try:
        current_doc = load_doc(current_path)
        baseline_doc = load_doc(baseline_path)
        current = kernel_table(current_path, current_doc)
        baseline = kernel_table(baseline_path, baseline_doc)
    except (OSError, ValueError, KeyError) as err:
        print(f"check_perf_regression: {err}", file=sys.stderr)
        return 2

    failed = False
    for name in sorted(set(current) & set(baseline)):
        cur, base = current[name], baseline[name]
        ratio = cur / base if base > 0 else float("inf")
        verdict = "OK" if ratio <= factor else "REGRESSION"
        failed = failed or ratio > factor
        print(
            f"{name}: current {cur:.0f} ns/call, baseline "
            f"{base:.0f} ns/call, ratio {ratio:.2f}x "
            f"(limit {factor:.2f}x) -> {verdict}"
        )
    for name in sorted(set(current) ^ set(baseline)):
        where = "baseline" if name in baseline else "current"
        print(f"{name}: only in {where} -> SKIPPED")

    for key, floor in SPEEDUP_FLOORS.items():
        if key not in current_doc:
            continue
        speedup = float(current_doc[key])
        verdict = "OK" if speedup >= floor else "REGRESSION"
        failed = failed or speedup < floor
        print(f"{key}: {speedup:.2f}x (floor {floor:.2f}x) -> {verdict}")

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
