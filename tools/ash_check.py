#!/usr/bin/env python3
"""ash-check: semantic static analysis over compile_commands.json.

`tools/ash_lint.py` polices token-level patterns; this tool checks the
*call-graph* and *declaration-level* invariants the lab's correctness
story actually rests on.  Four checkers:

  signal-safety
      Every function reachable from a registered fatal-signal handler
      (`sa_handler = f`, `std::signal(SIG..., f)`) must be on the
      async-signal-safe allowlist: the POSIX AS-safe syscall set plus the
      pinned, separately-audited project functions
      (obs::FlightRecorder::record / write_fd — byte-identity and
      torn-dump tests own their safety proof).  Reaching `malloc`, any
      iostream, a mutex, `throw` or `new` on that path is a finding: a
      handler that allocates can deadlock on the heap lock of the very
      thread it interrupted.

  shard-purity
      A lambda handed to `util::ThreadPool::parallel_for` (and the
      project functions it calls, traversed to a bounded depth) must not
      touch file-scope mutable globals, non-const static locals, `errno`
      or errno-latching calls (strtod family, strerror), or non-util RNG
      (rand, drand48, std::random_device, std::mt19937, ...).  This
      mechanizes the "bit-identical at any thread count" guarantee:
      shard bodies may only write state they own by index.

  unit-flow
      A suffix-named raw double (`_s`, `_v`, `_k`, `_c`, `_hz`) appearing
      as a *public* struct/class data member (`double x_v;`,
      `std::vector<double> periods_s;`) or as the return type of a
      suffix-named function (`double period_s(...)`) anywhere under
      `src/` is a finding: quantities crossing a declaration boundary
      must use the strong types from ash/util/units.h.  Supersedes
      ash_lint's narrower parameter-only `raw-double-api` rule.

  protocol-exhaustiveness
      Every `fleet::MessageType` enumerator must have a payload codec
      struct (encode() + parse() in protocol.cpp), a to_string
      classification, and a test under tests/fleet/ referencing it; every
      `fleet::ProtocolViolation` must be classified in protocol.cpp and
      exercised by a hostile-input test.  Cross-checks protocol.h,
      protocol.cpp and tests/fleet/.

Frontend: `clang.cindex` (libclang) is used when importable to resolve
call targets precisely; otherwise a deterministic, self-contained
declaration/call-graph parser takes over, so CI never depends on an
optional wheel.  `--frontend fallback` forces the self-contained parser
(what the self-tests pin).  The fallback parser resolves calls by name,
not by overload: its call graph is an over-approximation, and it does
not see through function pointers other than the signal-registration
idioms above (see DESIGN.md Sec. 14 for the full limits).

Suppression requires a reason:

    code();  // ash-check: allow(rule): why this is safe

A bare `allow(rule)` with no `: reason` does not suppress — it is
itself reported.  Exit status: 0 clean, 1 findings, 2 usage or internal
errors.  `--json` emits machine-readable findings for CI.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from dataclasses import dataclass, asdict, field

from ash_lint import strip_code  # one source of truth for the lexer

CHECKS = (
    "signal-safety",
    "shard-purity",
    "unit-flow",
    "protocol-exhaustiveness",
)

CXX_EXTENSIONS = (".h", ".hpp", ".cpp", ".cc", ".cxx")
EXCLUDED_PARTS = ("lint/fixtures", "build")

ALLOW_RE = re.compile(
    r"ash-check:\s*allow\(([a-z0-9_,\- ]+)\)(\s*:\s*(\S.*))?")

# ---------------------------------------------------------------------------
# Findings & suppression
# ---------------------------------------------------------------------------


@dataclass
class Finding:
    check: str
    path: str
    line: int
    message: str
    snippet: str


class Report:
    def __init__(self):
        self.findings: list[Finding] = []
        self.suppressed: list[Finding] = []
        self._seen: set = set()

    def add(self, check: str, path: str, line: int, message: str,
            source_line: str) -> None:
        key = (check, path, line, message)
        if key in self._seen:
            return
        self._seen.add(key)
        f = Finding(check, path, line, message, source_line.strip()[:160])
        m = ALLOW_RE.search(source_line)
        if m:
            rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
            if check in rules:
                if m.group(3):
                    self.suppressed.append(f)
                    return
                f = Finding(
                    check, path, line,
                    f"suppression escape for '{check}' carries no reason: "
                    "write `// ash-check: allow(" + check + "): <why>`"
                    " — an unexplained escape is unreviewable",
                    source_line.strip()[:160])
        self.findings.append(f)


# ---------------------------------------------------------------------------
# Self-contained fallback parser
# ---------------------------------------------------------------------------

CONTROL_KEYWORDS = frozenset(
    "if for while switch catch return do else new delete throw sizeof "
    "alignof decltype static_assert case goto co_await co_return "
    "co_yield".split())

CALL_RE = re.compile(r"(?<!\w)([A-Za-z_~][\w]*(?:::[\w~]+)*)\s*\(")
ACCESS_RE = re.compile(r"\b(public|protected|private)\s*:(?!:)")
PREPROC_RE = re.compile(r"^[ \t]*#.*$", re.MULTILINE)

MEMBER_DOUBLE_RE = re.compile(
    r"(?:^|[;{}:\s])double\s+(\w+_(?:s|v|k|c|hz))\s*(?:=[^;]*)?;")
MEMBER_VECTOR_RE = re.compile(
    r"(?:^|[;{}:\s])std::vector<\s*double\s*>\s+(\w+_(?:s|v|k|c|hz))"
    r"\s*(?:=[^;]*)?;")
RETURN_DOUBLE_RE = re.compile(
    r"(?:^|[;{}:\s])(?:virtual\s+|static\s+|constexpr\s+|inline\s+)*"
    r"double\s+((?:\w+::)*\w+_(?:s|v|k|c|hz))\s*\(")

GLOBAL_DECL_RE = re.compile(
    r"^\s*(?:volatile\s+)?(?:struct\s+|class\s+)?[\w:<>,\*&\s]+?"
    r"[\s\*&](\w+)\s*(?:\[[^\]]*\])?\s*(?:=[^;]*)?;\s*$")
GLOBAL_SKIP_RE = re.compile(
    r"\b(const|constexpr|constinit|using|typedef|namespace|return|"
    r"friend|template|extern|enum|atomic|thread_local)\b|[()]")

STATIC_LOCAL_RE = re.compile(
    r"(?<!\w)static\s+(?!const\b|constexpr\b)[\w:<>,\s\*&]+?[\s\*&]"
    r"(\w+)\s*(?:\[[^\]]*\])?\s*(?:=[^;{]*)?[;{]")

HANDLER_ASSIGN_RE = re.compile(r"\.\s*sa_handler\s*=\s*(\w+)")
SIGNAL_CALL_RE = re.compile(r"\bsignal\s*\(\s*SIG\w+\s*,\s*&?\s*([\w:]+)")

LAMBDA_START_RE = re.compile(r"\[[^\]]*\]\s*(?:\([^)]*\))?\s*(?:mutable\s*)?"
                             r"(?:->\s*[\w:<>]+\s*)?\{")


@dataclass
class Func:
    name: str            # simple name ("handle_fatal", "apply_members")
    qualified: str       # as written in the head ("BatchEnsemble::evolve")
    rel: str
    line: int
    body: str            # stripped body text, braces excluded
    body_line: int       # line number of the opening brace


@dataclass
class Member:
    name: str
    rel: str
    line: int
    kind: str            # "double" | "vector<double>"
    owner: str           # enclosing class/struct name


@dataclass
class EnumDef:
    name: str
    rel: str
    enumerators: list  # (name, line)


class SourceFile:
    """One parsed translation unit or header (fallback frontend)."""

    def __init__(self, path: str, rel: str):
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            self.text = f.read()
        self.rel = rel.replace(os.sep, "/")
        code = strip_code(self.text)
        # Blank preprocessor lines: their parentheses and angle brackets
        # would otherwise confuse statement chunking.
        self.code = PREPROC_RE.sub(lambda m: " " * len(m.group(0)), code)
        self.lines = self.text.split("\n")
        self.functions: list[Func] = []
        self.members: list[Member] = []
        self.return_decls: list = []      # (name, line)
        self.enums: list[EnumDef] = []
        self.globals: dict[str, int] = {}  # mutable file-scope name -> line
        self._parse()

    def source_line(self, line_no: int) -> str:
        if 1 <= line_no <= len(self.lines):
            return self.lines[line_no - 1]
        return ""

    def _line_of(self, offset: int) -> int:
        return self.code.count("\n", 0, offset) + 1

    # -- statement-oriented scanner ------------------------------------

    def _parse(self) -> None:
        code = self.code
        n = len(code)
        i = 0
        chunk_start = 0
        # scope stack entries: ["namespace"|"class"|"block", name, access]
        scopes: list[list] = []

        def in_class() -> bool:
            return bool(scopes) and scopes[-1][0] == "class"

        def at_top() -> bool:
            return all(s[0] == "namespace" for s in scopes)

        while i < n:
            ch = code[i]
            if ch == ";":
                self._statement(code[chunk_start:i + 1], chunk_start, scopes)
                chunk_start = i + 1
            elif ch == "{":
                head = code[chunk_start:i]
                kind = self._classify_head(head)
                if kind[0] == "enum":
                    end = self._match_brace(i)
                    self._collect_enum(kind[1], code[i + 1:end], i + 1)
                    i = code.find(";", end)
                    if i < 0:
                        break
                    chunk_start = i + 1
                elif kind[0] == "function":
                    end = self._match_brace(i)
                    self._flush_access(head, scopes)
                    self.functions.append(
                        Func(kind[1].split("::")[-1], kind[1], self.rel,
                             self._line_of(chunk_start + kind[2]),
                             code[i + 1:end], self._line_of(i)))
                    # A suffix-named double-returning *definition* also
                    # counts for unit-flow (headers with inline bodies).
                    self._head_return_decl(head, chunk_start)
                    i = end
                    chunk_start = i + 1
                elif kind[0] == "namespace":
                    scopes.append(["namespace", kind[1], "public", True])
                    chunk_start = i + 1
                elif kind[0] == "class":
                    self._flush_access(head, scopes)
                    default = "private" if kind[2] == "class" else "public"
                    # A nested type declared in a non-public section is
                    # not API surface, nor is anything declared inside a
                    # function/initializer block.
                    exposed = True
                    if scopes:
                        top = scopes[-1]
                        if top[0] == "class":
                            exposed = top[2] == "public" and top[3]
                        elif top[0] == "block":
                            exposed = False
                    scopes.append(["class", kind[1], default, exposed])
                    chunk_start = i + 1
                else:
                    # brace-init, array initializer, lambda at file scope,
                    # extern "C" block...: treat as a transparent block.
                    scopes.append(["block", "", "public", False])
                    chunk_start = i + 1
            elif ch == "}":
                self._statement(code[chunk_start:i], chunk_start, scopes)
                if scopes:
                    scopes.pop()
                chunk_start = i + 1
                if i + 1 < n and code[i + 1] == ";":
                    chunk_start = i + 2
                    i += 1
            i += 1

    def _match_brace(self, open_at: int) -> int:
        depth = 0
        for j in range(open_at, len(self.code)):
            c = self.code[j]
            if c == "{":
                depth += 1
            elif c == "}":
                depth -= 1
                if depth == 0:
                    return j
        return len(self.code) - 1

    def _classify_head(self, head: str):
        """Classify the text between the previous statement boundary and
        an opening brace."""
        # Trailing access labels belong to the class body, not the head.
        m = re.search(r"\bnamespace(\s+([\w:]+))?\s*$", head)
        if m:
            return ("namespace", m.group(2) or "<anon>")
        m = re.search(r"\benum\s+(?:class\s+|struct\s+)?(\w+)"
                      r"(?:\s*:\s*[\w:\s]+)?\s*$", head)
        if m:
            return ("enum", m.group(1))
        m = re.search(r"\b(class|struct|union)\s+(?:\[\[\w+\]\]\s*)?(\w+)"
                      r"(?:\s+final)?(?:\s*:\s*[^;{]*)?\s*$", head)
        if m and "(" not in head[m.end():]:
            return ("class", m.group(2), m.group(1))
        # Function definition: a call-ish pattern whose name is not a
        # control keyword, with balanced parens, not an assignment RHS.
        best = None
        for cm in CALL_RE.finditer(head):
            name = cm.group(1)
            if name.split("::")[-1] in CONTROL_KEYWORDS:
                continue
            best = (cm.group(1), cm.start(1))
        if best and "=" not in head.split("(")[0]:
            return ("function", best[0], best[1])
        return ("other",)

    def _flush_access(self, text: str, scopes: list) -> None:
        for am in ACCESS_RE.finditer(text):
            for s in reversed(scopes):
                if s[0] == "class":
                    s[2] = am.group(1)
                    break

    def _statement(self, stmt: str, offset: int, scopes: list) -> None:
        self._flush_access(stmt, scopes)
        # Text after the last access label is the declaration itself.
        last = None
        for am in ACCESS_RE.finditer(stmt):
            last = am
        decl = stmt[last.end():] if last else stmt
        decl_off = offset + (last.end() if last else 0)

        klass = None
        access = "public"
        exposed = True
        for s in reversed(scopes):
            if s[0] == "class":
                klass, access, exposed = s[1], s[2], s[3]
                break
            if s[0] == "block":
                return  # inside an initializer or unknown block: skip
        if klass is not None:
            if access != "public" or not exposed:
                return
            for regex, kind in ((MEMBER_DOUBLE_RE, "double"),
                                (MEMBER_VECTOR_RE, "vector<double>")):
                for m in regex.finditer(decl):
                    self.members.append(
                        Member(m.group(1), self.rel,
                               self._line_of(decl_off + m.start(1)),
                               kind, klass))
            m = RETURN_DOUBLE_RE.search(decl)
            if m:
                self.return_decls.append(
                    (m.group(1), self._line_of(decl_off + m.start(1))))
            return

        # Namespace scope: free-function declarations and mutable globals.
        m = RETURN_DOUBLE_RE.search(decl)
        if m:
            self.return_decls.append(
                (m.group(1), self._line_of(decl_off + m.start(1))))
            return
        if "(" in decl or GLOBAL_SKIP_RE.search(decl):
            return
        gm = GLOBAL_DECL_RE.match(decl.strip()) or \
            GLOBAL_DECL_RE.match(" " + decl.replace("\n", " ").strip())
        if gm:
            self.globals[gm.group(1)] = self._line_of(decl_off)

    def _head_return_decl(self, head: str, offset: int) -> None:
        m = RETURN_DOUBLE_RE.search(head)
        if m:
            self.return_decls.append(
                (m.group(1), self._line_of(offset + m.start(1))))

    def _collect_enum(self, name: str, body: str, body_offset: int) -> None:
        enumerators = []
        for m in re.finditer(r"(?:^|,)\s*(\w+)", body):
            enumerators.append(
                (m.group(1), self._line_of(body_offset + m.start(1))))
        self.enums.append(EnumDef(name, self.rel, enumerators))


def body_calls(body: str) -> list:
    """(name, offset) call expressions in a stripped body."""
    calls = []
    for m in CALL_RE.finditer(body):
        name = m.group(1)
        if name.split("::")[-1] in CONTROL_KEYWORDS:
            continue
        calls.append((name, m.start(1)))
    return calls


# ---------------------------------------------------------------------------
# Optional libclang frontend
# ---------------------------------------------------------------------------


def load_libclang():
    """Return the clang.cindex module, or None when unavailable.

    When present, calls inside handler/shard bodies are resolved through
    the AST (precise receiver types) instead of by name.  The analysis
    below only consumes the (function -> callee names) map, so both
    frontends feed the same checkers.
    """
    try:
        import clang.cindex as cindex  # type: ignore
        cindex.Index.create()
        return cindex
    except Exception:
        return None


def clang_call_graph(cindex, compile_commands, root):
    """Best-effort (function -> callee simple names) map via libclang."""
    graph: dict[str, set] = {}
    try:
        for entry in compile_commands:
            path = entry.get("file", "")
            if not path.startswith(root):
                continue
            tu = cindex.Index.create().parse(
                path, args=[a for a in entry.get("command", "").split()[1:]
                            if a.startswith(("-I", "-D", "-std"))])
            stack = [tu.cursor]
            while stack:
                cur = stack.pop()
                if cur.kind.name in ("FUNCTION_DECL", "CXX_METHOD") and \
                        cur.is_definition():
                    callees = graph.setdefault(cur.spelling, set())
                    inner = [cur]
                    while inner:
                        c = inner.pop()
                        if c.kind.name == "CALL_EXPR" and c.spelling:
                            callees.add(c.spelling)
                        inner.extend(c.get_children())
                else:
                    stack.extend(cur.get_children())
    except Exception:
        return None  # fall back silently: the deterministic parser rules
    return graph


# ---------------------------------------------------------------------------
# Checker: signal-safety
# ---------------------------------------------------------------------------

# The POSIX async-signal-safe set the tree is allowed to lean on, plus
# project functions whose AS-safety is pinned by their own tests:
# FlightRecorder::record (atomics + fixed slots) and write_fd (write(2)
# into a stack buffer, byte-identical to serialize() by test).
AS_SAFE_CALLS = frozenset("""
    open close read write rename unlink fsync fdatasync raise kill _exit
    _Exit abort sigaction sigemptyset sigfillset sigaddset sigdelset
    sigprocmask signal waitpid getpid gettid dup dup2 pipe poll lseek
    record write_fd
""".split())

AS_UNSAFE_CALLS = {
    "malloc": "allocates on the heap the interrupted thread may hold",
    "calloc": "allocates on the heap the interrupted thread may hold",
    "realloc": "allocates on the heap the interrupted thread may hold",
    "free": "takes the heap lock the interrupted thread may hold",
    "printf": "stdio buffers are not async-signal-safe",
    "fprintf": "stdio buffers are not async-signal-safe",
    "snprintf": "not on the POSIX AS-safe list (may call malloc for %f)",
    "sprintf": "stdio formatting is not async-signal-safe",
    "puts": "stdio buffers are not async-signal-safe",
    "exit": "runs atexit handlers and flushes stdio; use _exit",
    "lock": "a mutex held by the interrupted thread deadlocks the handler",
    "unlock": "mutex operations are not async-signal-safe",
}

UNSAFE_TOKEN_RES = (
    (re.compile(r"(?<!\w)new\s+[\w:]"), "operator new allocates"),
    (re.compile(r"(?<!\w)throw\s"), "throw unwinds through foreign frames"),
    (re.compile(r"std::(cout|cerr|clog)\b"), "iostream locks and allocates"),
    (re.compile(r"std::string\b"), "std::string allocates"),
)


def find_handler_roots(files):
    roots = []
    for sf in files:
        for func in sf.functions:
            for regex in (HANDLER_ASSIGN_RE, SIGNAL_CALL_RE):
                for m in regex.finditer(func.body):
                    name = m.group(1).split("::")[-1]
                    if name not in ("SIG_IGN", "SIG_DFL"):
                        roots.append((name, sf,
                                      func.body_line +
                                      func.body.count("\n", 0, m.start())))
    return roots


def check_signal_safety(files, report, call_graph=None):
    by_name: dict[str, list] = {}
    for sf in files:
        for func in sf.functions:
            by_name.setdefault(func.name, []).append((sf, func))

    roots = find_handler_roots(files)
    seen = set()
    queue = [name for name, _, _ in roots]
    while queue:
        name = queue.pop(0)
        if name in seen:
            continue
        seen.add(name)
        for sf, func in by_name.get(name, []):
            line_base = func.body_line
            for tok_re, why in UNSAFE_TOKEN_RES:
                m = tok_re.search(func.body)
                if m:
                    line = line_base + func.body.count("\n", 0, m.start())
                    report.add(
                        "signal-safety", sf.rel, line,
                        f"'{func.qualified}' is reachable from a signal "
                        f"handler but {why}; only AS-safe operations may "
                        "run on this path", sf.source_line(line))
            callees = body_calls(func.body)
            if call_graph is not None and name in call_graph:
                # libclang resolved this body: drop textual matches it
                # does not confirm (template/type-name noise), keeping
                # the textual offsets for line numbers.
                confirmed = call_graph[name]
                callees = [(c, o) for c, o in callees
                           if c.split("::")[-1] in confirmed
                           or c in confirmed]
            for callee, off in callees:
                simple = callee.split("::")[-1]
                line = line_base + func.body.count("\n", 0, off)
                if simple in AS_SAFE_CALLS:
                    continue
                if simple in AS_UNSAFE_CALLS:
                    report.add(
                        "signal-safety", sf.rel, line,
                        f"'{callee}' called on the signal-handler path "
                        f"from '{func.qualified}': {AS_UNSAFE_CALLS[simple]}",
                        sf.source_line(line))
                elif simple in by_name:
                    queue.append(simple)
                else:
                    report.add(
                        "signal-safety", sf.rel, line,
                        f"'{callee}' called on the signal-handler path "
                        f"from '{func.qualified}' is not on the AS-safe "
                        "allowlist; prove it safe and pin it, or move the "
                        "work out of the handler", sf.source_line(line))


# ---------------------------------------------------------------------------
# Checker: shard-purity
# ---------------------------------------------------------------------------

ERRNO_LATCHING_RE = re.compile(
    r"(?<![\w:])(?:std::)?(strto(?:d|f|ld|l|ll|ul|ull|imax|umax)|strerror)"
    r"\s*\(")
ERRNO_RE = re.compile(r"(?<![\w.])errno\b")
RNG_IMPURE_RE = re.compile(
    r"(?<![\w:])(?:std::)?(rand|srand|drand48|lrand48|mrand48)\s*\(|"
    r"std::(random_device|mt19937(?:_64)?|minstd_rand0?|"
    r"default_random_engine)\b")

SHARD_BFS_DEPTH = 2


def shard_lambda_spans(sf):
    """(body_text, line) of each lambda passed to parallel_for/submit."""
    spans = []
    for func in sf.functions:
        body = func.body
        for m in re.finditer(r"\b(?:parallel_for|submit)\s*\(", body):
            lam = LAMBDA_START_RE.search(body, m.end())
            if not lam:
                continue
            open_at = body.index("{", lam.start())
            depth = 0
            end = open_at
            for j in range(open_at, len(body)):
                if body[j] == "{":
                    depth += 1
                elif body[j] == "}":
                    depth -= 1
                    if depth == 0:
                        end = j
                        break
            spans.append((body[open_at + 1:end],
                          func.body_line + body.count("\n", 0, open_at)))
    return spans


def check_shard_purity(files, report, call_graph=None):
    by_name: dict[str, list] = {}
    for sf in files:
        for func in sf.functions:
            by_name.setdefault(func.name, []).append((sf, func))

    def scan_body(sf, body, line_base, context):
        for regex, what in (
                (ERRNO_RE, "reads/writes errno, which is latched "
                 "per-thread by unrelated libc calls"),
                (ERRNO_LATCHING_RE, "calls an errno-latching conversion; "
                 "use util's locale-free parsers outside the sharded loop"),
                (RNG_IMPURE_RE, "uses a non-util RNG; all randomness in a "
                 "sharded loop must come from a pre-derived ash::Rng "
                 "stream owned by the shard")):
            for m in regex.finditer(body):
                line = line_base + body.count("\n", 0, m.start())
                report.add(
                    "shard-purity", sf.rel, line,
                    f"{context} {what} — sharded loops must be "
                    "bit-identical at any thread count",
                    sf.source_line(line))
        for m in STATIC_LOCAL_RE.finditer(body):
            line = line_base + body.count("\n", 0, m.start())
            report.add(
                "shard-purity", sf.rel, line,
                f"{context} declares mutable static local "
                f"'{m.group(1)}': shared across shards, ordering is "
                "scheduler-dependent", sf.source_line(line))
        for gname, _ in sf.globals.items():
            gre = re.compile(r"(?<![\w.])" + re.escape(gname) + r"\b")
            m = gre.search(body)
            if m:
                line = line_base + body.count("\n", 0, m.start())
                report.add(
                    "shard-purity", sf.rel, line,
                    f"{context} touches file-scope mutable '{gname}': "
                    "shard bodies may only write state they own by index",
                    sf.source_line(line))

    def resolve(callee: str, rel: str) -> list:
        """Same-file definitions first; across files only when the simple
        name is project-unique (a name-based resolver cannot pick between
        the many `run`s and `evolve`s — a documented fallback limit)."""
        simple = callee.split("::")[-1]
        cands = by_name.get(simple, [])
        same_file = [c for c in cands if c[0].rel == rel]
        if same_file:
            return same_file
        if "::" in callee:
            qualified = [c for c in cands
                         if c[1].qualified.endswith(callee)]
            if qualified:
                return qualified
        return cands if len(cands) == 1 else []

    for sf in files:
        for body, line in shard_lambda_spans(sf):
            scan_body(sf, body, line, "sharded loop body")
            # Bounded BFS into the project functions the lambda calls.
            frontier = [(c, sf.rel) for c, _ in body_calls(body)]
            seen = set()
            for _ in range(SHARD_BFS_DEPTH):
                nxt = []
                for callee, rel in frontier:
                    simple = callee.split("::")[-1]
                    if simple in seen:
                        continue
                    seen.add(simple)
                    for csf, cfunc in resolve(callee, rel):
                        scan_body(csf, cfunc.body, cfunc.body_line,
                                  f"'{cfunc.qualified}' (reached from a "
                                  "sharded loop)")
                        nxt.extend((c, csf.rel)
                                   for c, _ in body_calls(cfunc.body))
                frontier = nxt


# ---------------------------------------------------------------------------
# Checker: unit-flow
# ---------------------------------------------------------------------------

UNIT_TYPE_FOR_SUFFIX = {
    "s": "Seconds", "v": "Volts", "k": "Kelvin", "c": "Celsius",
    "hz": "Hertz",
}

# `x_per_v`, `ramp_c_per_s`, `heat_capacity_j_per_k`... are *rates* —
# dimensionless in none of the five base units — not quantities carrying
# the suffix unit; forcing a strong type on them would mis-state their
# dimension.
RATE_NAME_RE = re.compile(r"_per_(?:s|v|k|c|hz)$")

UNIT_FLOW_PREFIX = "src/"
UNIT_FLOW_EXEMPT = ("src/util/include/ash/util/units.h",)


def check_unit_flow(files, report):
    for sf in files:
        if not sf.rel.startswith(UNIT_FLOW_PREFIX):
            continue
        if sf.rel in UNIT_FLOW_EXEMPT:
            continue
        for member in sf.members:
            if RATE_NAME_RE.search(member.name):
                continue
            suffix = member.name.rsplit("_", 1)[1]
            want = UNIT_TYPE_FOR_SUFFIX[suffix]
            if member.kind == "double":
                fix = f"ash::{want}"
            else:
                fix = f"std::vector<ash::{want}>"
            report.add(
                "unit-flow", sf.rel, member.line,
                f"public member '{member.owner}::{member.name}' is a raw "
                f"{member.kind}; use {fix} so the unit rides the type "
                "through serialization and call chains",
                sf.source_line(member.line))
        for name, line in sf.return_decls:
            if RATE_NAME_RE.search(name):
                continue
            suffix = name.rsplit("_", 1)[1]
            want = UNIT_TYPE_FOR_SUFFIX[suffix]
            report.add(
                "unit-flow", sf.rel, line,
                f"'{name}' returns a raw double; return ash::{want} so "
                "callers cannot mistake the unit",
                sf.source_line(line))


# ---------------------------------------------------------------------------
# Checker: protocol-exhaustiveness
# ---------------------------------------------------------------------------

PROTOCOL_HEADER = "src/fleet/include/ash/fleet/protocol.h"
PROTOCOL_IMPL = "src/fleet/protocol.cpp"
PROTOCOL_TESTS_DIR = "tests/fleet"

VIOLATION_SENTINELS = ("kNone", "kCount")


def check_protocol(files, report, root):
    header = impl = None
    for sf in files:
        if sf.rel == PROTOCOL_HEADER:
            header = sf
        elif sf.rel == PROTOCOL_IMPL:
            impl = sf
    if header is None or impl is None:
        return  # nothing to check in this tree (fixture roots)

    tests_text = ""
    tests_dir = os.path.join(root, PROTOCOL_TESTS_DIR)
    if os.path.isdir(tests_dir):
        for name in sorted(os.listdir(tests_dir)):
            if name.endswith(CXX_EXTENSIONS):
                with open(os.path.join(tests_dir, name), "r",
                          encoding="utf-8", errors="replace") as f:
                    tests_text += f.read()

    struct_names = {m.group(1) for m in re.finditer(
        r"\bstruct\s+(\w+)", header.code)}
    impl_code = impl.code

    for enum in header.enums:
        if enum.name == "MessageType":
            for name, line in enum.enumerators:
                struct = name[1:] if name.startswith("k") else name
                missing = []
                if struct not in struct_names:
                    missing.append("a payload codec struct in protocol.h")
                else:
                    if not re.search(r"\b%s::encode\b" % struct, impl_code):
                        missing.append(f"{struct}::encode in protocol.cpp")
                    if not re.search(r"\b%s::parse\b" % struct, impl_code):
                        missing.append(f"{struct}::parse in protocol.cpp")
                if f"MessageType::{name}" not in impl_code:
                    missing.append("a to_string classification in "
                                   "protocol.cpp")
                if name not in tests_text:
                    missing.append(f"a hostile-input test under "
                                   f"{PROTOCOL_TESTS_DIR}/ referencing it")
                if missing:
                    report.add(
                        "protocol-exhaustiveness", header.rel, line,
                        f"MessageType::{name} lacks " + "; ".join(missing) +
                        " — every wire verb ships with its codec and its "
                        "hostile-input proof", header.source_line(line))
        elif enum.name == "ProtocolViolation":
            for name, line in enum.enumerators:
                if name in VIOLATION_SENTINELS:
                    continue
                missing = []
                if f"ProtocolViolation::{name}" not in impl_code:
                    missing.append("a classification site in protocol.cpp")
                if name not in tests_text:
                    missing.append(f"a hostile-input test under "
                                   f"{PROTOCOL_TESTS_DIR}/")
                if missing:
                    report.add(
                        "protocol-exhaustiveness", header.rel, line,
                        f"ProtocolViolation::{name} lacks " +
                        "; ".join(missing), header.source_line(line))


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def iter_source_files(root, paths):
    for base in paths:
        full = os.path.join(root, base)
        if os.path.isfile(full):
            yield full, os.path.relpath(full, root)
            continue
        if not os.path.isdir(full):
            continue
        for dirpath, dirnames, filenames in os.walk(full):
            rel_dir = os.path.relpath(dirpath, root).replace(os.sep, "/")
            dirnames[:] = sorted(
                d for d in dirnames
                if not any(part in f"{rel_dir}/{d}"
                           for part in EXCLUDED_PARTS))
            for name in sorted(filenames):
                if name.endswith(CXX_EXTENSIONS):
                    p = os.path.join(dirpath, name)
                    yield p, os.path.relpath(p, root)


def load_compile_commands(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="ash_check",
        description="semantic static analysis (call graphs, unit flow, "
        "protocol exhaustiveness) for the ash lab")
    parser.add_argument("paths", nargs="*", default=["src", "tools"],
                        help="files or directories relative to --root "
                        "(default: src tools)")
    parser.add_argument("--root", default=".", help="repository root")
    parser.add_argument("--compile-commands", default=None,
                        help="compile_commands.json (default: "
                        "<root>/build/compile_commands.json when present); "
                        "restricts analysis to files the build graph knows "
                        "plus headers")
    parser.add_argument("--json", action="store_true",
                        help="emit findings as JSON on stdout")
    parser.add_argument("--check", action="append", choices=CHECKS,
                        help="run only the named check(s)")
    parser.add_argument("--frontend", choices=("auto", "clang", "fallback"),
                        default="auto",
                        help="auto prefers libclang when importable; "
                        "fallback forces the self-contained parser")
    parser.add_argument("--list-checks", action="store_true")
    args = parser.parse_args(argv)

    if args.list_checks:
        for c in CHECKS:
            print(c)
        return 0

    root = os.path.abspath(args.root)
    if not os.path.isdir(root):
        print(f"ash_check: --root {args.root} is not a directory",
              file=sys.stderr)
        return 2

    cc_path = args.compile_commands
    if cc_path is None:
        default_cc = os.path.join(root, "build", "compile_commands.json")
        cc_path = default_cc if os.path.isfile(default_cc) else ""
    compile_commands = None
    if cc_path:
        try:
            compile_commands = load_compile_commands(cc_path)
        except (OSError, json.JSONDecodeError) as err:
            print(f"ash_check: cannot read compile commands {cc_path}: "
                  f"{err}", file=sys.stderr)
            return 2

    known_tus = None
    if compile_commands is not None:
        known_tus = set()
        for entry in compile_commands:
            p = entry.get("file", "")
            if not os.path.isabs(p):
                p = os.path.join(entry.get("directory", ""), p)
            known_tus.add(os.path.realpath(p))

    checks = args.check if args.check else list(CHECKS)

    files = []
    try:
        for path, rel in iter_source_files(root, args.paths):
            # Headers are always parsed (compile_commands never lists
            # them); TUs are cross-checked against the build graph so a
            # file the build does not compile cannot silently pass.
            if known_tus is not None and path.endswith((".cpp", ".cc",
                                                        ".cxx")):
                if os.path.realpath(path) not in known_tus and \
                        rel.replace(os.sep, "/").startswith("src/"):
                    print(f"ash_check: warning: {rel} not in compile "
                          "commands; analyzing anyway", file=sys.stderr)
            files.append(SourceFile(path, rel))
    except OSError as err:
        print(f"ash_check: {err}", file=sys.stderr)
        return 2

    if not files:
        print("ash_check: no source files matched", file=sys.stderr)
        return 2

    call_graph = None
    if args.frontend in ("auto", "clang"):
        cindex = load_libclang()
        if cindex is not None and compile_commands is not None:
            call_graph = clang_call_graph(cindex, compile_commands, root)
        elif args.frontend == "clang":
            print("ash_check: --frontend clang requested but clang.cindex "
                  "is not importable", file=sys.stderr)
            return 2

    report = Report()
    if "signal-safety" in checks:
        check_signal_safety(files, report, call_graph)
    if "shard-purity" in checks:
        check_shard_purity(files, report, call_graph)
    if "unit-flow" in checks:
        check_unit_flow(files, report)
    if "protocol-exhaustiveness" in checks:
        check_protocol(files, report, root)

    report.findings.sort(key=lambda f: (f.path, f.line, f.check))

    if args.json:
        counts: dict[str, int] = {}
        for f in report.findings:
            counts[f.check] = counts.get(f.check, 0) + 1
        print(json.dumps({
            "findings": [asdict(f) for f in report.findings],
            "counts": counts,
            "files_scanned": len(files),
            "suppressed": len(report.suppressed),
            "frontend": "clang" if call_graph is not None else "fallback",
        }, indent=2))
    else:
        for f in report.findings:
            print(f"{f.path}:{f.line}: [{f.check}] {f.message}")
            if f.snippet:
                print(f"    {f.snippet}")
        tail = (f"{len(files)} files scanned, "
                f"{len(report.findings)} finding(s)")
        if report.suppressed:
            tail += f", {len(report.suppressed)} suppressed"
        print(tail, file=sys.stderr)

    return 1 if report.findings else 0


if __name__ == "__main__":
    sys.exit(main())
